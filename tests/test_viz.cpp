// Tests for the Visualizer: view control (zoom keeps the left edge,
// interval selection), thread filtering/compression, event navigation
// (popup info, same-thread and similar-event stepping), source mapping,
// and the SVG/ASCII renderers.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "viz/visualizer.hpp"
#include "workloads/prodcons.hpp"

namespace vppb::viz {
namespace {

struct Fixture {
  trace::Trace log;
  core::SimResult result;

  explicit Fixture(int cpus = 2) {
    sol::Program program;
    log = rec::record_program(program, []() {
      sol::Semaphore sem(0u);
      sol::thread_t a = 0, b = 0;
      sol::thr_create_fn(
          [&sem]() -> void* {
            sol::compute(SimTime::millis(5));
            sem.post();
            sol::compute(SimTime::millis(5));
            return nullptr;
          },
          0, &a, "poster");
      sol::thr_create_fn(
          [&sem]() -> void* {
            sem.wait();
            sol::compute(SimTime::millis(8));
            return nullptr;
          },
          0, &b, "waiter");
      sol::join_all();
    });
    core::SimConfig cfg;
    cfg.hw.cpus = cpus;
    result = core::simulate(log, cfg);
  }
};

TEST(ViewTest, ResetSpansWholeRun) {
  Fixture f;
  Visualizer v(f.result, f.log);
  EXPECT_EQ(v.view().t0, SimTime::zero());
  EXPECT_EQ(v.view().t1, f.result.total);
}

TEST(ViewTest, ZoomKeepsLeftEdgeFixed) {
  // Paper §3.3: "the zoom keeps the left-most time fixed".
  Fixture f;
  Visualizer v(f.result, f.log);
  const SimTime t0 = v.view().t0;
  const SimTime width = v.view().width();
  v.zoom_in(1.5);
  EXPECT_EQ(v.view().t0, t0);
  EXPECT_NEAR(static_cast<double>(v.view().width().ns()),
              static_cast<double>(width.ns()) / 1.5, 2.0);
  v.zoom_in(3.0);
  EXPECT_EQ(v.view().t0, t0);
  v.zoom_out(1.5);
  EXPECT_EQ(v.view().t0, t0);
  EXPECT_THROW(v.zoom_in(0.5), Error);
}

TEST(ViewTest, ZoomOutClampsToRunEnd) {
  Fixture f;
  Visualizer v(f.result, f.log);
  v.zoom_out(100.0);
  EXPECT_LE(v.view().t1, f.result.total);
}

TEST(ViewTest, IntervalSelection) {
  Fixture f;
  Visualizer v(f.result, f.log);
  const SimTime a = f.result.total.scaled(0.25);
  const SimTime b = f.result.total.scaled(0.5);
  v.select_interval(a, b);
  EXPECT_EQ(v.view().t0, a);
  EXPECT_EQ(v.view().t1, b);
  EXPECT_THROW(v.select_interval(b, a), Error);
}

TEST(ThreadsTest, VisibleDefaultsToAll) {
  Fixture f;
  Visualizer v(f.result, f.log);
  EXPECT_EQ(v.visible_threads().size(), f.result.threads.size());
}

TEST(ThreadsTest, ManualSelection) {
  Fixture f;
  Visualizer v(f.result, f.log);
  v.set_visible_threads({4});
  ASSERT_EQ(v.visible_threads().size(), 1u);
  EXPECT_EQ(v.visible_threads()[0], 4);
  v.show_all_threads();
  EXPECT_GT(v.visible_threads().size(), 1u);
}

TEST(ThreadsTest, CompressionHidesInactive) {
  Fixture f;
  Visualizer v(f.result, f.log);
  // The waiter (T5) is blocked for the first ~5ms; a view inside that
  // window must hide it after compression... unless it is runnable.
  v.select_interval(SimTime::micros(100), SimTime::millis(2));
  v.compress_threads();
  bool waiter_visible = false;
  for (const ThreadId tid : v.visible_threads()) {
    if (tid == 5) waiter_visible = true;
  }
  EXPECT_FALSE(waiter_visible)
      << "a thread blocked for the whole interval is not active";
  // Over the whole run both workers are active; main never runs (it
  // blocks in join for the entire execution), so compression drops it.
  v.reset_view();
  v.compress_threads();
  EXPECT_EQ(v.visible_threads().size(), 2u);
}

TEST(EventsTest, OrderedByTime) {
  Fixture f;
  Visualizer v(f.result, f.log);
  ASSERT_GT(v.event_count(), 0u);
  for (std::size_t i = 1; i < v.event_count(); ++i) {
    EXPECT_GE(v.event(i).at, v.event(i - 1).at);
  }
  EXPECT_THROW(v.event(v.event_count()), Error);
}

TEST(EventsTest, EventNearFindsClosest) {
  Fixture f;
  Visualizer v(f.result, f.log);
  // The poster's sema_post happens at ~5ms.
  const auto idx = v.event_near(4, SimTime::millis(5));
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(v.event(*idx).tid, 4);
  EXPECT_FALSE(v.event_near(99, SimTime::zero()).has_value());
}

TEST(EventsTest, PopupInfoFields) {
  Fixture f;
  Visualizer v(f.result, f.log);
  std::size_t post_idx = 0;
  for (std::size_t i = 0; i < v.event_count(); ++i) {
    if (v.event(i).op == trace::Op::kSemaPost) post_idx = i;
  }
  const EventInfo info = v.event_info(post_idx);
  EXPECT_EQ(info.tid, 4);
  EXPECT_EQ(info.thread_name, "poster");
  EXPECT_EQ(info.start_func, "poster");
  EXPECT_EQ(info.op, "sema_post");
  EXPECT_EQ(info.object, "sema#1");
  EXPECT_GE(info.cpu, 0);
  EXPECT_EQ(info.started, SimTime::millis(5));
  EXPECT_GE(info.thread_working, SimTime::millis(10));
  EXPECT_NE(info.source.find("test_viz.cpp"), std::string::npos);
}

TEST(EventsTest, SelectCentersView) {
  Fixture f;
  Visualizer v(f.result, f.log);
  v.zoom_in(3.0);
  std::size_t post_idx = 0;
  for (std::size_t i = 0; i < v.event_count(); ++i) {
    if (v.event(i).op == trace::Op::kSemaPost) post_idx = i;
  }
  v.select_event(post_idx);
  ASSERT_TRUE(v.selected_event().has_value());
  EXPECT_EQ(*v.selected_event(), post_idx);
  const SimTime at = v.event(post_idx).at;
  EXPECT_LE(v.view().t0, at);
  EXPECT_GE(v.view().t1, at);
}

TEST(EventsTest, SameThreadStepping) {
  Fixture f;
  Visualizer v(f.result, f.log);
  // First event of T4, then walk forward through all of T4's events.
  std::optional<std::size_t> cursor;
  for (std::size_t i = 0; i < v.event_count(); ++i) {
    if (v.event(i).tid == 4) {
      cursor = i;
      break;
    }
  }
  ASSERT_TRUE(cursor.has_value());
  int count = 1;
  while (auto next = v.next_event_same_thread(*cursor)) {
    EXPECT_EQ(v.event(*next).tid, 4);
    cursor = next;
    ++count;
  }
  EXPECT_GE(count, 2);  // at least post + exit
  // And back again.
  while (auto prev = v.prev_event_same_thread(*cursor)) {
    EXPECT_EQ(v.event(*prev).tid, 4);
    cursor = prev;
    --count;
  }
  EXPECT_EQ(count, 1);
}

TEST(EventsTest, SimilarSteppingFollowsObject) {
  Fixture f;
  Visualizer v(f.result, f.log);
  // The first semaphore op: its "similar" successor must be on the same
  // semaphore even though another thread causes it.
  std::optional<std::size_t> first_sema;
  for (std::size_t i = 0; i < v.event_count(); ++i) {
    if (v.event(i).obj.kind == trace::ObjKind::kSema) {
      first_sema = i;
      break;
    }
  }
  ASSERT_TRUE(first_sema.has_value());
  const auto next = v.next_similar_event(*first_sema);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(v.event(*next).obj, v.event(*first_sema).obj);
  const auto back = v.prev_similar_event(*next);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, *first_sema);
}

TEST(RenderTest, AsciiFlowShowsStatesAndEvents) {
  Fixture f(1);  // one CPU: runnable (grey) time is guaranteed
  Visualizer v(f.result, f.log);
  const std::string flow = render_flow_ascii(v, 100);
  EXPECT_NE(flow.find("T1"), std::string::npos);
  EXPECT_NE(flow.find("T4"), std::string::npos);
  EXPECT_NE(flow.find('='), std::string::npos);   // running
  EXPECT_NE(flow.find('.'), std::string::npos);   // runnable
  EXPECT_NE(flow.find('^'), std::string::npos);   // sema_post
  EXPECT_NE(flow.find('X'), std::string::npos);   // thr_exit
  EXPECT_THROW(render_flow_ascii(v, 5), Error);
}

TEST(RenderTest, AsciiParallelismShowsLoad) {
  Fixture f(1);
  Visualizer v(f.result, f.log);
  const std::string graph = render_parallelism_ascii(v, 80, 6);
  EXPECT_NE(graph.find('#'), std::string::npos);  // running
  EXPECT_NE(graph.find('+'), std::string::npos);  // runnable on top
}

TEST(RenderTest, SvgIsWellFormedAndComplete) {
  Fixture f;
  Visualizer v(f.result, f.log);
  std::size_t post_idx = 0;
  for (std::size_t i = 0; i < v.event_count(); ++i) {
    if (v.event(i).op == trace::Op::kSemaPost) post_idx = i;
  }
  v.select_event(post_idx);
  const std::string svg = render_svg(v, RenderOptions{});
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // The selected event flashes.
  EXPECT_NE(svg.find("animate"), std::string::npos);
  // Semaphore arrows are red, per the paper.
  EXPECT_NE(svg.find("#d62728"), std::string::npos);
  // Thread labels present.
  EXPECT_NE(svg.find("poster"), std::string::npos);
  // Tooltips carry source locations.
  EXPECT_NE(svg.find("test_viz.cpp"), std::string::npos);
}

TEST(RenderTest, IndividualGraphRenderers) {
  Fixture f;
  Visualizer v(f.result, f.log);
  EXPECT_NE(render_parallelism_svg(v, RenderOptions{}).find("<svg"),
            std::string::npos);
  EXPECT_NE(render_flow_svg(v, RenderOptions{}).find("<svg"),
            std::string::npos);
}

TEST(RenderTest, LwpGanttShowsMultiplexing) {
  // 2 workers + main on 1 LWP: the single LWP's row must carry several
  // different thread glyphs over time.
  sol::Program program;
  const trace::Trace log = rec::record_program(program, []() {
    for (int i = 0; i < 2; ++i) {
      sol::thr_create_fn(
          []() -> void* {
            sol::compute(SimTime::millis(5));
            return nullptr;
          },
          0, nullptr, "w");
    }
    sol::join_all();
  });
  core::SimConfig cfg;
  cfg.hw.cpus = 1;
  cfg.sched.lwps = 1;
  const core::SimResult r = core::simulate(log, cfg);
  Visualizer v(r, log);
  const std::string gantt = render_lwp_ascii(v, 80);
  EXPECT_NE(gantt.find("L0"), std::string::npos);
  // Worker tids 4 and 5 -> glyphs '4' and '5' appear on the same row.
  EXPECT_NE(gantt.find('4'), std::string::npos);
  EXPECT_NE(gantt.find('5'), std::string::npos);
  EXPECT_EQ(gantt.find("L1"), std::string::npos) << "only one LWP existed";
}

TEST(RenderTest, LwpSvgGantt) {
  Fixture f(1);
  Visualizer v(f.result, f.log);
  const std::string svg = render_lwp_svg(v, RenderOptions{});
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("L0"), std::string::npos);
  EXPECT_NE(svg.find("waiting for a CPU"), std::string::npos)
      << "on one CPU some LWP must have waited";
}

TEST(RenderTest, HiddenThreadsNotRendered) {
  Fixture f;
  Visualizer v(f.result, f.log);
  v.set_visible_threads({1});
  const std::string flow = render_flow_ascii(v, 60);
  EXPECT_NE(flow.find("T1"), std::string::npos);
  EXPECT_EQ(flow.find("T4"), std::string::npos);
  const std::string svg = render_flow_svg(v, RenderOptions{});
  EXPECT_EQ(svg.find("poster"), std::string::npos);
}

TEST(RenderTest, ZoomedViewClipsSegments) {
  Fixture f;
  Visualizer v(f.result, f.log);
  // Focus on the first millisecond: only the poster runs there.
  v.select_interval(SimTime::zero(), SimTime::millis(1));
  const std::string flow = render_flow_ascii(v, 60);
  // The waiter's row should be blank (blocked on the semaphore).
  bool waiter_row_blank = false;
  for (const auto& line : split(flow, '\n')) {
    if (starts_with(line, "T5")) {
      waiter_row_blank = line.find('=') == std::string_view::npos;
    }
  }
  EXPECT_TRUE(waiter_row_blank);
}

}  // namespace
}  // namespace vppb::viz
