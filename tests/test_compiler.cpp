// Unit tests for the trace compiler: CPU attribution from the one-LWP
// log, call/return pairing, try-op and timed-wait outcome capture.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"

namespace vppb::core {
namespace {

using trace::Op;

trace::Trace from_lines(const std::string& body) {
  return trace::from_text(body);
}

TEST(CompilerTest, SingleThreadComputeDemand) {
  // main: start, computes 100us, locks (5us in-call), computes 50us, exits.
  const trace::Trace t = from_lines(
      "thread 1 main main 0 0\n"
      "rec 0 1 C start_collect none 0 0 0 0\n"
      "rec 100000 1 C mtx_lock mutex 1 0 0 0\n"
      "rec 105000 1 R mtx_lock mutex 1 0 0 0\n"
      "rec 155000 1 C thr_exit thread 1 0 0 0\n");
  const CompiledTrace c = compile(t);
  const CompiledThread& main_ct = c.thread(1);
  ASSERT_EQ(main_ct.steps.size(), 2u);
  EXPECT_EQ(main_ct.steps[0].op, Op::kMutexLock);
  EXPECT_EQ(main_ct.steps[0].cpu, SimTime::micros(100));
  EXPECT_EQ(main_ct.steps[0].op_cost, SimTime::micros(5));
  EXPECT_EQ(main_ct.steps[1].op, Op::kThrExit);
  EXPECT_EQ(main_ct.steps[1].cpu, SimTime::micros(50));
  EXPECT_EQ(main_ct.total_cpu, SimTime::micros(155));
}

TEST(CompilerTest, InterleavedAttributionFollowsLaterRecord) {
  // T1 blocks in thr_join from 10us; T4 runs 10..40us then exits; the
  // interval 10..40 belongs to T4, and the 40..41 wakeup tail to T1.
  const trace::Trace t = from_lines(
      "thread 1 main main 0 0\n"
      "thread 4 worker worker 0 0\n"
      "rec 0 1 C start_collect none 0 0 0 0\n"
      "rec 10000 1 C thr_join thread 4 0 0 0\n"
      "rec 40000 4 C thr_exit thread 4 0 0 0\n"
      "rec 41000 1 R thr_join thread 4 4 0 0\n"
      "rec 41000 1 C thr_exit thread 1 0 0 0\n");
  const CompiledTrace c = compile(t);
  EXPECT_EQ(c.thread(4).steps.at(0).cpu, SimTime::micros(30));
  const Step& join = c.thread(1).steps.at(0);
  EXPECT_EQ(join.cpu, SimTime::micros(10));
  EXPECT_EQ(join.op_cost, SimTime::micros(1));  // wakeup tail only
  EXPECT_FALSE(c.thread(4).created_in_log);
}

TEST(CompilerTest, CreatedInLogFlag) {
  const trace::Trace t = from_lines(
      "thread 1 main main 0 0\n"
      "thread 4 worker worker 0 0\n"
      "rec 0 1 C start_collect none 0 0 0 0\n"
      "rec 5000 1 C thr_create thread 0 0 0 0\n"
      "rec 6000 1 R thr_create thread 0 4 0 0\n"
      "rec 7000 4 C thr_exit thread 4 0 0 0\n"
      "rec 8000 1 C thr_exit thread 1 0 0 0\n");
  const CompiledTrace c = compile(t);
  EXPECT_TRUE(c.thread(4).created_in_log);
  EXPECT_EQ(c.thread(1).steps.at(0).outcome, 4);
}

TEST(CompilerTest, TimedWaitTimeoutBecomesDelay) {
  const trace::Trace t = from_lines(
      "thread 1 main main 0 0\n"
      "rec 0 1 C start_collect none 0 0 0 0\n"
      "rec 1000 1 C mtx_lock mutex 1 0 0 0\n"
      "rec 1000 1 R mtx_lock mutex 1 0 0 0\n"
      "rec 2000 1 C cond_timedwait cond 1 1 0 0\n"
      "rec 5002000 1 R cond_timedwait cond 1 0 0 0\n"
      "rec 5002000 1 C mtx_unlock mutex 1 0 0 0\n"
      "rec 5002000 1 R mtx_unlock mutex 1 0 0 0\n"
      "rec 5002000 1 C thr_exit thread 1 0 0 0\n");
  const CompiledTrace c = compile(t);
  const Step& wait = c.thread(1).steps.at(1);
  EXPECT_EQ(wait.op, Op::kCondTimedwait);
  EXPECT_EQ(wait.outcome, 0);
  EXPECT_EQ(wait.delay, SimTime::millis(5));
  EXPECT_EQ(wait.op_cost, SimTime::zero())
      << "sleep time must not be charged as compute";
}

TEST(CompilerTest, MetadataCopied) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {
    sol::thread_t tid = 0;
    sol::thr_create_fn([]() -> void* { return nullptr; }, sol::THR_BOUND,
                       &tid, "bound_fn");
    sol::thr_join(tid, nullptr, nullptr);
  });
  const CompiledTrace c = compile(t);
  EXPECT_EQ(c.thread(1).name, "main");
  EXPECT_TRUE(c.thread(4).bound);
  EXPECT_EQ(c.thread(4).start_func, "bound_fn");
  EXPECT_EQ(c.recorded_duration, t.duration());
}

TEST(CompilerTest, RecordedFig2DemandsMatchWork) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {
    auto worker = []() -> void* {
      sol::compute(SimTime::micros(400));
      return nullptr;
    };
    sol::thread_t a = 0, b = 0;
    sol::thr_create_fn(worker, 0, &a, "worker");
    sol::thr_create_fn(worker, 0, &b, "worker");
    sol::join_all();
  });
  const CompiledTrace c = compile(t);
  EXPECT_EQ(c.thread(4).total_cpu, SimTime::micros(400));
  EXPECT_EQ(c.thread(5).total_cpu, SimTime::micros(400));
  // Both workers' demand lies in their single thr_exit step.
  EXPECT_EQ(c.thread(4).steps.back().op, Op::kThrExit);
  EXPECT_TRUE(c.thread(4).created_in_log);
  EXPECT_TRUE(c.thread(5).created_in_log);
}

TEST(CompilerTest, TryOutcomesPreserved) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {
    sol::Mutex m;
    EXPECT_TRUE(m.try_lock());
    sol::thr_create_fn(
        [&m]() -> void* {
          EXPECT_FALSE(m.try_lock());
          return nullptr;
        },
        0, nullptr);
    sol::join_all();
    m.unlock();
  });
  const CompiledTrace c = compile(t);
  const auto& main_steps = c.thread(1).steps;
  const auto it =
      std::find_if(main_steps.begin(), main_steps.end(),
                   [](const Step& s) { return s.op == Op::kMutexTrylock; });
  ASSERT_NE(it, main_steps.end());
  EXPECT_EQ(it->outcome, 1);
  const auto& w = c.thread(4).steps;
  const auto wit = std::find_if(w.begin(), w.end(), [](const Step& s) {
    return s.op == Op::kMutexTrylock;
  });
  ASSERT_NE(wit, w.end());
  EXPECT_EQ(wit->outcome, 0);
}

TEST(CompilerTest, RejectsDanglingCall) {
  trace::Trace t;
  t.upsert_thread(1);
  trace::Record r;
  r.at = SimTime::zero();
  r.tid = 1;
  r.phase = trace::Phase::kCall;
  r.op = Op::kMutexLock;
  r.obj = {trace::ObjKind::kMutex, 1};
  t.records.push_back(r);
  EXPECT_THROW(compile(t), Error);
}

TEST(CompilerTest, BroadcastOutcomeIsReleaseCount) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {
    sol::Barrier barrier(3);
    for (int i = 0; i < 2; ++i) {
      sol::thr_create_fn(
          [&barrier]() -> void* {
            barrier.arrive();
            return nullptr;
          },
          0, nullptr);
    }
    sol::thr_yield();     // both workers reach the barrier and wait
    barrier.arrive();     // main is last: broadcast releases 2
    sol::join_all();
  });
  const CompiledTrace c = compile(t);
  const auto& main_steps = c.thread(1).steps;
  const auto it =
      std::find_if(main_steps.begin(), main_steps.end(),
                   [](const Step& s) { return s.op == Op::kCondBroadcast; });
  ASSERT_NE(it, main_steps.end());
  EXPECT_EQ(it->outcome, 2);
}

}  // namespace
}  // namespace vppb::core
