// Tests for the VPPB Simulator: speed-up predictions on programs with
// known parallel structure, scheduling-policy knobs, replay rules, and
// timeline invariants.
#include <gtest/gtest.h>

#include <functional>

#include "core/engine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"

namespace vppb::core {
namespace {

trace::Trace record(const std::function<void()>& fn) {
  sol::Program program;
  return rec::record_program(program, fn);
}

/// N workers, each computing `work` with no shared state.
std::function<void()> parallel_workload(int n, SimTime work) {
  return [n, work]() {
    for (int i = 0; i < n; ++i) {
      sol::thr_create_fn(
          [work]() -> void* {
            sol::compute(work);
            return nullptr;
          },
          0, nullptr);
    }
    sol::join_all();
  };
}

/// N workers whose whole compute sits inside one shared mutex.
std::function<void()> serialized_workload(int n, SimTime work) {
  return [n, work]() {
    auto m = std::make_shared<sol::Mutex>();
    for (int i = 0; i < n; ++i) {
      sol::thr_create_fn(
          [m, work]() -> void* {
            sol::ScopedLock lock(*m);
            sol::compute(work);
            return nullptr;
          },
          0, nullptr);
    }
    sol::join_all();
  };
}

TEST(EngineTest, OneCpuReplayMatchesRecording) {
  const trace::Trace t = record(parallel_workload(3, SimTime::millis(10)));
  SimConfig cfg;
  cfg.hw.cpus = 1;
  const SimResult r = simulate(t, cfg);
  EXPECT_EQ(r.total, t.duration())
      << "one-CPU virtual replay must reproduce the recording exactly";
  EXPECT_DOUBLE_EQ(r.speedup, 1.0);
  r.validate();
}

TEST(EngineTest, PerfectlyParallelScalesLinearly) {
  const trace::Trace t = record(parallel_workload(4, SimTime::millis(50)));
  for (int cpus : {2, 4}) {
    const double s = predict_speedup(t, cpus);
    EXPECT_NEAR(s, cpus, 0.05 * cpus)
        << "independent threads should scale to " << cpus << " CPUs";
  }
  // More CPUs than threads: capped at the thread count.
  EXPECT_NEAR(predict_speedup(t, 8), 4.0, 0.3);
}

TEST(EngineTest, FullySerializedDoesNotScale) {
  const trace::Trace t = record(serialized_workload(6, SimTime::millis(20)));
  const double s = predict_speedup(t, 8);
  EXPECT_LT(s, 1.1) << "one hot mutex must serialize the program";
  EXPECT_GE(s, 0.95);
}

TEST(EngineTest, LwpCountLimitsParallelism) {
  const trace::Trace t = record(parallel_workload(4, SimTime::millis(40)));
  SimConfig cfg;
  cfg.hw.cpus = 4;
  cfg.sched.lwps = 2;  // paper §3.2: the LWP knob
  const SimResult r = simulate(t, cfg);
  EXPECT_NEAR(r.speedup, 2.0, 0.2)
      << "4 CPUs but 2 LWPs should cap the speed-up near 2";
  r.validate();
}

TEST(EngineTest, ThreadsBoundToOneCpuSerialize) {
  const trace::Trace t = record(parallel_workload(2, SimTime::millis(30)));
  SimConfig cfg;
  cfg.hw.cpus = 2;
  for (ThreadId tid : {4, 5}) {
    ThreadPolicy pol;
    pol.override_binding = true;
    pol.binding = Binding::kBoundCpu;
    pol.cpu = 0;
    cfg.sched.thread_policy[tid] = pol;
  }
  const SimResult r = simulate(t, cfg);
  EXPECT_LT(r.speedup, 1.3) << "both workers pinned to CPU 0 cannot overlap";
}

TEST(EngineTest, BoundThreadCreationCosts67x) {
  // Hand-written trace: create costs 1ms in the log.
  const char* tmpl =
      "thread 1 main main 0 0\n"
      "thread 4 w w %d 0\n"
      "rec 0 1 C start_collect none 0 0 0 0\n"
      "rec 0 1 C thr_create thread 0 0 0 0\n"
      "rec 1000000 1 R thr_create thread 0 4 0 0\n"
      "rec 1000000 4 C thr_exit thread 4 0 0 0\n"
      "rec 1000000 1 C thr_join thread 4 0 0 0\n"
      "rec 1000000 1 R thr_join thread 4 4 0 0\n"
      "rec 1000000 1 C thr_exit thread 1 0 0 0\n";
  char unbound_txt[1024], bound_txt[1024];
  std::snprintf(unbound_txt, sizeof unbound_txt, tmpl, 0);
  std::snprintf(bound_txt, sizeof bound_txt, tmpl, 1);
  SimConfig cfg;
  cfg.hw.cpus = 1;
  const SimResult unbound = simulate(trace::from_text(unbound_txt), cfg);
  const SimResult bound = simulate(trace::from_text(bound_txt), cfg);
  EXPECT_EQ(unbound.total, SimTime::millis(1));
  EXPECT_EQ(bound.total, SimTime::millis(1).scaled(6.7))
      << "bound thread creation must cost 6.7x (paper §3.2)";
}

TEST(EngineTest, BoundThreadSyncCosts59x) {
  const char* tmpl =
      "thread 1 main main %d 0\n"
      "rec 0 1 C start_collect none 0 0 0 0\n"
      "rec 0 1 C mtx_lock mutex 1 0 0 0\n"
      "rec 100000 1 R mtx_lock mutex 1 0 0 0\n"
      "rec 100000 1 C mtx_unlock mutex 1 0 0 0\n"
      "rec 200000 1 R mtx_unlock mutex 1 0 0 0\n"
      "rec 200000 1 C thr_exit thread 1 0 0 0\n";
  char unbound_txt[1024], bound_txt[1024];
  std::snprintf(unbound_txt, sizeof unbound_txt, tmpl, 0);
  std::snprintf(bound_txt, sizeof bound_txt, tmpl, 1);
  SimConfig cfg;
  cfg.hw.cpus = 1;
  const SimResult unbound = simulate(trace::from_text(unbound_txt), cfg);
  const SimResult bound = simulate(trace::from_text(bound_txt), cfg);
  EXPECT_EQ(unbound.total, SimTime::micros(200));
  EXPECT_EQ(bound.total, SimTime::micros(200).scaled(5.9));
}

TEST(EngineTest, CommDelaySlowsCrossCpuWakeups) {
  const trace::Trace t = record(parallel_workload(4, SimTime::millis(10)));
  SimConfig fast, slow;
  fast.hw.cpus = slow.hw.cpus = 4;
  slow.hw.comm_delay = SimTime::micros(500);
  const SimResult rf = simulate(t, fast);
  const SimResult rs = simulate(t, slow);
  EXPECT_GT(rs.total, rf.total);
}

TEST(EngineTest, MigrationPenaltyIncreasesTotal) {
  const trace::Trace t = record(serialized_workload(4, SimTime::millis(5)));
  SimConfig base, pen;
  base.hw.cpus = pen.hw.cpus = 4;
  pen.hw.migration_penalty = SimTime::micros(200);
  EXPECT_GE(simulate(t, pen).total, simulate(t, base).total);
}

TEST(EngineTest, MemoryContentionSlowsParallelRuns) {
  const trace::Trace t = record(parallel_workload(4, SimTime::millis(20)));
  SimConfig base, cont;
  base.hw.cpus = cont.hw.cpus = 4;
  cont.hw.memory_contention_alpha = 0.10;
  const SimResult rb = simulate(t, base);
  const SimResult rc = simulate(t, cont);
  EXPECT_GT(rc.total, rb.total);
  // alpha = 0.1 with 4 running -> rate 1.3; parallel phase ~30% slower.
  EXPECT_LT(rc.total, rb.total.scaled(1.4));
}

TEST(EngineTest, PriorityOverrideReordersDispatch) {
  const trace::Trace t = record(parallel_workload(2, SimTime::millis(10)));
  SimConfig cfg;
  cfg.hw.cpus = 1;
  ThreadPolicy pol;
  pol.override_priority = true;
  pol.priority = 9;
  cfg.sched.thread_policy[5] = pol;  // boost the second worker
  const SimResult r = simulate(t, cfg);
  const auto segs4 = r.thread_segments(4);
  const auto segs5 = r.thread_segments(5);
  auto first_running = [](const std::vector<Segment>& segs) {
    for (const auto& s : segs) {
      if (s.state == SegState::kRunning) return s.start;
    }
    return SimTime::max();
  };
  EXPECT_LT(first_running(segs5), first_running(segs4))
      << "the boosted thread must be dispatched first";
}

TEST(EngineTest, SetPrioEventIgnoredWhenOverridden) {
  // main boosts T4 via thr_setprio; with an override for T4 the event
  // must be ignored (paper §3.2).
  auto workload = []() {
    sol::thread_t a = 0, b = 0;
    auto worker = []() -> void* {
      sol::compute(SimTime::millis(10));
      return nullptr;
    };
    sol::thr_create_fn(worker, 0, &a, "wa");
    sol::thr_create_fn(worker, 0, &b, "wb");
    sol::thr_setprio(a, 20);
    sol::join_all();
  };
  const trace::Trace t = record(workload);
  SimConfig cfg;
  cfg.hw.cpus = 1;
  const SimResult boosted = simulate(t, cfg);
  ThreadPolicy pol;
  pol.override_priority = true;
  pol.priority = 0;
  cfg.sched.thread_policy[4] = pol;
  const SimResult overridden = simulate(t, cfg);
  auto first_running = [](const SimResult& r, ThreadId tid) {
    for (const auto& s : r.thread_segments(tid)) {
      if (s.state == SegState::kRunning) return s.start;
    }
    return SimTime::max();
  };
  // With the recorded setprio, T4 preempts; with the override, FIFO wins.
  EXPECT_LT(first_running(boosted, 4), first_running(boosted, 5));
  EXPECT_LE(first_running(overridden, 4), first_running(overridden, 5));
}

TEST(EngineTest, BarrierProgramPredictsParallelPhases) {
  const int n = 4;
  auto workload = [n]() {
    auto barrier = std::make_shared<sol::Barrier>(n + 1);
    for (int i = 0; i < n; ++i) {
      sol::thr_create_fn(
          [barrier]() -> void* {
            for (int phase = 0; phase < 3; ++phase) {
              sol::compute(SimTime::millis(10));
              barrier->arrive();
            }
            return nullptr;
          },
          0, nullptr);
    }
    for (int phase = 0; phase < 3; ++phase) barrier->arrive();
    sol::join_all();
  };
  const trace::Trace t = record(workload);
  const double s = predict_speedup(t, n);
  EXPECT_NEAR(s, n, 0.15 * n)
      << "barrier phases of equal work should still scale";
  // The replay must not deadlock on any CPU count.
  for (int cpus : {1, 2, 3, 8}) {
    EXPECT_GT(predict_speedup(t, cpus), 0.5) << cpus;
  }
}

TEST(EngineTest, TimedWaitTimeoutReplaysAsDelay) {
  auto workload = []() {
    sol::Mutex m;
    sol::CondVar c;
    m.lock();
    c.timed_wait(m, SimTime::millis(5));
    m.unlock();
    sol::compute(SimTime::millis(1));
  };
  const trace::Trace t = record(workload);
  SimConfig cfg;
  cfg.hw.cpus = 4;
  const SimResult r = simulate(t, cfg);
  EXPECT_EQ(r.total, SimTime::millis(6))
      << "the recorded 5ms timeout must replay as a 5ms delay";
  const auto& stats = r.threads.at(1);
  EXPECT_EQ(stats.sleeping_time, SimTime::millis(5));
}

TEST(EngineTest, ProducerConsumerReplaysWithoutDeadlock) {
  auto workload = []() {
    auto items = std::make_shared<sol::Semaphore>(0u);
    auto m = std::make_shared<sol::Mutex>();
    for (int i = 0; i < 3; ++i) {
      sol::thr_create_fn(
          [items, m]() -> void* {
            for (int k = 0; k < 5; ++k) {
              sol::compute(SimTime::micros(100));
              sol::ScopedLock lock(*m);
              items->post();
            }
            return nullptr;
          },
          0, nullptr);
    }
    for (int k = 0; k < 15; ++k) {
      items->wait();
      sol::compute(SimTime::micros(50));
    }
    sol::join_all();
  };
  const trace::Trace t = record(workload);
  for (int cpus : {1, 2, 4, 8}) {
    SimConfig cfg;
    cfg.hw.cpus = cpus;
    const SimResult r = simulate(t, cfg);
    r.validate();
    EXPECT_GT(r.speedup, 0.9) << cpus;
  }
}

TEST(EngineTest, ReplayDeadlockDetected) {
  // sema_wait recorded as successful, but no post exists in the log:
  // an unreplayable trace must be reported, not hang.
  const trace::Trace t = trace::from_text(
      "thread 1 main main 0 0\n"
      "rec 0 1 C start_collect none 0 0 0 0\n"
      "rec 1000 1 C sema_wait sema 1 0 0 0\n"
      "rec 2000 1 R sema_wait sema 1 0 0 0\n"
      "rec 3000 1 C thr_exit thread 1 0 0 0\n");
  SimConfig cfg;
  EXPECT_THROW(simulate(t, cfg), Error);
}

TEST(EngineTest, TimeSlicingInterleavesCpuHogs) {
  // Two 600ms hogs on one CPU: TS quantum expiry must interleave them.
  const trace::Trace t = record(parallel_workload(2, SimTime::millis(600)));
  SimConfig cfg;
  cfg.hw.cpus = 1;
  const SimResult r = simulate(t, cfg);
  const auto segs4 = r.thread_segments(4);
  int running_segments = 0;
  for (const auto& s : segs4) {
    if (s.state == SegState::kRunning) ++running_segments;
  }
  EXPECT_GE(running_segments, 3)
      << "quantum expiry should preempt a CPU hog several times";
  r.validate();
}

TEST(EngineTest, TsDynamicsOffMeansPureFifo) {
  const trace::Trace t = record(parallel_workload(2, SimTime::millis(600)));
  SimConfig cfg;
  cfg.hw.cpus = 1;
  cfg.sched.ts_dynamics = false;
  cfg.sched.ts_table = TsTable::flat(SimTime::seconds(10.0));
  const SimResult r = simulate(t, cfg);
  const auto segs4 = r.thread_segments(4);
  int running_segments = 0;
  for (const auto& s : segs4) {
    if (s.state == SegState::kRunning) ++running_segments;
  }
  EXPECT_EQ(running_segments, 1)
      << "without TS dynamics and with a huge quantum, no preemption";
}

TEST(EngineTest, CpuStatsAccountBusyTime) {
  const trace::Trace t = record(parallel_workload(2, SimTime::millis(10)));
  SimConfig cfg;
  cfg.hw.cpus = 2;
  const SimResult r = simulate(t, cfg);
  SimTime busy_total;
  for (const auto& c : r.cpu_stats) busy_total += c.busy;
  SimTime cpu_total;
  for (const auto& [tid, st] : r.threads) cpu_total += st.cpu_time;
  EXPECT_EQ(busy_total, cpu_total);
}

TEST(EngineTest, EventsCarrySourceLocations) {
  const trace::Trace t = record(parallel_workload(1, SimTime::millis(1)));
  SimConfig cfg;
  const SimResult r = simulate(t, cfg);
  bool found = false;
  for (const auto& e : r.events) {
    if (e.op == trace::Op::kThrCreate) {
      EXPECT_NE(t.location_string(t.records.front()), "placeholder");
      const std::string loc =
          t.strings.get(t.locations.at(e.loc).file);
      EXPECT_NE(loc.find("test_engine.cpp"), std::string::npos);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EngineTest, SpeedupMonotonicInCpus) {
  const trace::Trace t = record(parallel_workload(6, SimTime::millis(15)));
  double prev = 0.0;
  for (int cpus = 1; cpus <= 8; ++cpus) {
    const double s = predict_speedup(t, cpus);
    EXPECT_GE(s, prev - 0.05) << "speed-up should not regress at " << cpus;
    prev = s;
  }
}

TEST(EngineTest, RememberedSignalSurvivesScheduleRace) {
  // The §6 condition-variable hazard: in the recording the waiter is
  // asleep before the signal; on many CPUs the signaller can get there
  // first.  The remembered-signal rule must keep the replay live.
  auto workload = []() {
    sol::Mutex m;
    sol::CondVar c;
    bool ready = false;
    sol::thr_create_fn(
        [&]() -> void* {
          // Signaller: a bit of work, then signal under the mutex.
          sol::compute(SimTime::millis(2));
          sol::ScopedLock lock(m);
          ready = true;
          c.signal();
          return nullptr;
        },
        0, nullptr, "signaller");
    sol::thr_create_fn(
        [&]() -> void* {
          // Waiter: LOTS of work first, so on >1 CPU the signal fires
          // long before the waiter reaches cond_wait.
          sol::compute(SimTime::millis(10));
          sol::ScopedLock lock(m);
          while (!ready) c.wait(m);
          return nullptr;
        },
        0, nullptr, "waiter");
    sol::join_all();
  };
  sol::Program program;
  const trace::Trace t = rec::record_program(program, workload);
  for (int cpus : {1, 2, 4}) {
    SimConfig cfg;
    cfg.hw.cpus = cpus;
    const SimResult r = simulate(t, cfg);  // must not deadlock
    r.validate();
    EXPECT_GE(r.speedup, 0.9) << cpus;
  }
}

TEST(EngineTest, BoundThreadsGetDedicatedLwps) {
  // 4 bound threads with an LWP pool of 1: bound threads own their LWPs
  // beyond the pool, so they still run in parallel.
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {
    for (int i = 0; i < 4; ++i) {
      sol::thr_create_fn(
          []() -> void* {
            sol::compute(SimTime::millis(10));
            return nullptr;
          },
          sol::THR_BOUND, nullptr, "bound");
    }
    sol::join_all();
  });
  SimConfig cfg;
  cfg.hw.cpus = 4;
  cfg.sched.lwps = 1;  // the unbound pool; bound threads bypass it
  const SimResult r = simulate(t, cfg);
  EXPECT_NEAR(r.speedup, 4.0, 0.2);
  EXPECT_GE(r.lwp_stats.size(), 4u);
  int dedicated = 0;
  for (const auto& ls : r.lwp_stats) {
    if (ls.dedicated) ++dedicated;
  }
  EXPECT_EQ(dedicated, 4);
}

TEST(EngineTest, SignalWithNoLoggedWakeIsNotRemembered) {
  // A cond_signal that woke nobody in the log (outcome 0) must NOT be
  // saved for later: a subsequently-arriving waiter that the log shows
  // woken by a LATER signal should wait for that one.
  const trace::Trace t = trace::from_text(
      "thread 1 main main 0 0\n"
      "thread 4 w w 0 0\n"
      "rec 0 1 C start_collect none 0 0 0 0\n"
      "rec 1000 1 C mtx_lock mutex 1 0 0 0\n"
      "rec 1000 1 R mtx_lock mutex 1 0 0 0\n"
      "rec 2000 1 C cond_signal cond 1 0 0 0\n"
      "rec 2000 1 R cond_signal cond 1 0 0 0\n"
      "rec 3000 1 C mtx_unlock mutex 1 0 0 0\n"
      "rec 3000 1 R mtx_unlock mutex 1 0 0 0\n"
      "rec 4000 4 C mtx_lock mutex 1 0 0 0\n"
      "rec 4000 4 R mtx_lock mutex 1 0 0 0\n"
      "rec 5000 4 C cond_wait cond 1 1 0 0\n"
      "rec 6000 1 C mtx_lock mutex 1 0 0 0\n"
      "rec 6000 1 R mtx_lock mutex 1 0 0 0\n"
      "rec 7000 1 C cond_signal cond 1 0 0 0\n"
      "rec 7000 1 R cond_signal cond 1 1 0 0\n"
      "rec 8000 1 C mtx_unlock mutex 1 0 0 0\n"
      "rec 8000 1 R mtx_unlock mutex 1 0 0 0\n"
      "rec 9000 4 R cond_wait cond 1 0 0 0\n"
      "rec 9000 4 C mtx_unlock mutex 1 0 0 0\n"
      "rec 9000 4 R mtx_unlock mutex 1 0 0 0\n"
      "rec 9500 4 C thr_exit thread 4 0 0 0\n"
      "rec 9600 1 C thr_join thread 4 0 0 0\n"
      "rec 9600 1 R thr_join thread 4 4 0 0\n"
      "rec 9700 1 C thr_exit thread 1 0 0 0\n");
  SimConfig cfg;
  cfg.hw.cpus = 2;
  const SimResult r = simulate(t, cfg);  // must complete without deadlock
  r.validate();
}

TEST(EngineTest, ParallelismProfileMatchesStructure) {
  const trace::Trace t = record(parallel_workload(4, SimTime::millis(20)));
  SimConfig cfg;
  cfg.hw.cpus = 2;
  const SimResult r = simulate(t, cfg);
  int max_running = 0, max_runnable = 0;
  for (const auto& p : r.parallelism_profile(200)) {
    max_running = std::max(max_running, p.running);
    max_runnable = std::max(max_runnable, p.runnable);
  }
  EXPECT_EQ(max_running, 2) << "never more running threads than CPUs";
  EXPECT_GE(max_runnable, 2) << "the surplus threads must show as runnable";
}

}  // namespace
}  // namespace vppb::core
