// Edge cases and boundary conditions across the stack: empty traces,
// degenerate configurations, and error-path behaviour.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "trace/binary.hpp"
#include "trace/io.hpp"
#include "ult/fiber.hpp"
#include "util/error.hpp"
#include "viz/visualizer.hpp"

namespace vppb {
namespace {

TEST(EdgeTrace, EmptyTraceSimulates) {
  trace::Trace t;
  const core::SimResult r = core::simulate(t, core::SimConfig{});
  EXPECT_EQ(r.total, SimTime::zero());
  EXPECT_DOUBLE_EQ(r.speedup, 1.0);
  EXPECT_TRUE(r.events.empty());
}

TEST(EdgeTrace, MarkerOnlyTraceSimulates) {
  const trace::Trace t = trace::from_text(
      "thread 1 main main 0 0\n"
      "rec 0 1 C start_collect none 0 0 0 0\n"
      "rec 5000 1 C end_collect none 0 0 0 0\n");
  const core::SimResult r = core::simulate(t, core::SimConfig{});
  EXPECT_EQ(r.total, SimTime::zero())
      << "markers carry no demand; the thread exits immediately";
}

TEST(EdgeTrace, OutOfRangeLocationRejected) {
  trace::Trace t;
  t.upsert_thread(1);
  trace::Record r;
  r.tid = 1;
  r.op = trace::Op::kThrExit;
  r.obj = {trace::ObjKind::kThread, 1};
  r.loc = 57;  // no such location
  t.records.push_back(r);
  EXPECT_THROW(t.validate(), Error);
}

TEST(EdgeTrace, ZeroDurationProgram) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {});
  EXPECT_EQ(t.duration(), SimTime::zero());
  const core::SimResult r = core::simulate(t, core::SimConfig{});
  EXPECT_EQ(r.total, SimTime::zero());
  // The visualizer still constructs on an empty run.
  viz::Visualizer v(r, t);
  EXPECT_NO_THROW(viz::render_flow_ascii(v, 40));
}

TEST(EdgeEngine, ZeroCpusRejected) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {});
  core::SimConfig cfg;
  cfg.hw.cpus = 0;
  EXPECT_THROW(core::simulate(t, cfg), Error);
  cfg.hw.cpus = 1;
  cfg.sched.lwps = -1;
  EXPECT_THROW(core::simulate(t, cfg), Error);
}

TEST(EdgeEngine, CommDelayIgnoredOnOneCpu) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {
    sol::thr_create_fn(
        []() -> void* {
          sol::compute(SimTime::millis(1));
          return nullptr;
        },
        0, nullptr, "w");
    sol::join_all();
  });
  core::SimConfig cfg;
  cfg.hw.cpus = 1;
  cfg.hw.comm_delay = SimTime::millis(100);
  EXPECT_EQ(core::simulate(t, cfg).total, t.duration())
      << "no cross-CPU propagation exists on one CPU";
}

TEST(EdgeEngine, ManyMoreCpusThanThreads) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {
    sol::thr_create_fn(
        []() -> void* {
          sol::compute(SimTime::millis(2));
          return nullptr;
        },
        0, nullptr, "only");
    sol::join_all();
  });
  core::SimConfig cfg;
  cfg.hw.cpus = 64;
  const core::SimResult r = core::simulate(t, cfg);
  r.validate();
  EXPECT_LE(r.speedup, 1.01);
}

TEST(EdgeRuntime, NegativeWorkRejected) {
  ult::Runtime rt;
  EXPECT_THROW(
      rt.run([]() { ult::Runtime::current().work(SimTime::nanos(-1)); }),
      Error);
}

TEST(EdgeRuntime, TinyFiberStackRejected) {
  EXPECT_THROW(ult::Fiber([]() {}, 1024), Error);
}

TEST(EdgeRuntime, CurrentOutsideRunRejected) {
  EXPECT_THROW(ult::Runtime::current(), Error);
  EXPECT_FALSE(ult::Runtime::in_runtime());
}

TEST(EdgeRuntime, SuspendOfExitedThreadRejected) {
  ult::Runtime rt;
  rt.run([]() {
    auto& r = ult::Runtime::current();
    const ult::ThreadId child = r.spawn([] {});
    r.yield();  // child runs to completion
    EXPECT_THROW(r.suspend(child), Error);
    EXPECT_FALSE(r.resume(child));
  });
}

TEST(EdgeSolaris, NullArgumentsReturnEinval) {
  sol::Program program;
  program.run([]() {
    EXPECT_EQ(sol::mutex_lock(nullptr), sol::SOL_EINVAL);
    EXPECT_EQ(sol::sema_post(nullptr), sol::SOL_EINVAL);
    EXPECT_EQ(sol::cond_signal(nullptr), sol::SOL_EINVAL);
    EXPECT_EQ(sol::rw_rdlock(nullptr), sol::SOL_EINVAL);
    EXPECT_EQ(sol::thr_create(nullptr, 0, nullptr, nullptr, 0, nullptr),
              sol::SOL_EINVAL);
    sol::mutex_t uninit{};
    EXPECT_EQ(sol::mutex_unlock(&uninit), sol::SOL_EINVAL);
    sol::cond_t cond_uninit{};
    EXPECT_EQ(sol::cond_destroy(&cond_uninit), sol::SOL_EINVAL);
  });
}

TEST(EdgeSolaris, DestroyInUseRejected) {
  sol::Program program;
  program.run([]() {
    sol::mutex_t m{};
    sol::mutex_init(&m);
    sol::mutex_lock(&m);
    EXPECT_THROW(sol::mutex_destroy(&m), Error);
    sol::mutex_unlock(&m);
    EXPECT_EQ(sol::mutex_destroy(&m), sol::SOL_OK);
  });
}

TEST(EdgeSolaris, RecursiveLockDetected) {
  sol::Program program;
  program.run([]() {
    sol::Mutex m;
    m.lock();
    EXPECT_THROW(m.lock(), Error) << "self-deadlock must be diagnosed";
    m.unlock();
  });
}

TEST(EdgeSolaris, OpCostsInactiveInRealMode) {
  sol::Program::Options opts;
  opts.clock_mode = ult::ClockMode::kReal;
  opts.op_costs.sync = SimTime::seconds(10.0);  // must NOT be charged
  sol::Program program(opts);
  program.run([]() {
    sol::Mutex m;
    m.lock();
    m.unlock();
  });
  EXPECT_LT(program.last_duration(), SimTime::seconds(1.0));
}

TEST(EdgeSolaris, NegativeIoLatencyRejected) {
  sol::Program program;
  EXPECT_THROW(program.run([]() { sol::io_wait(SimTime::nanos(-5)); }),
               Error);
}

TEST(EdgeRecorder, FinishWithoutEventsYieldsEmptyTrace) {
  rec::Recorder recorder;
  const trace::Trace t = recorder.finish(SimTime::zero());
  EXPECT_TRUE(t.records.empty());
}

TEST(EdgeBinary, FiveByteMinimumEnforced) {
  const std::uint8_t tiny[] = {'V', 'P'};
  EXPECT_THROW(trace::from_binary(tiny, sizeof tiny), Error);
}

TEST(EdgeViz, EmptyResultRenders) {
  trace::Trace t;
  const core::SimResult r = core::simulate(t, core::SimConfig{});
  viz::Visualizer v(r, t);
  EXPECT_EQ(v.event_count(), 0u);
  EXPECT_NO_THROW(viz::render_parallelism_ascii(v, 40, 4));
  EXPECT_NO_THROW(viz::render_svg(v, viz::RenderOptions{}));
  EXPECT_FALSE(v.event_near(1, SimTime::zero()).has_value());
}

TEST(EdgeViz, SingleThreadTimeline) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {
    sol::compute(SimTime::millis(3));
  });
  core::SimConfig cfg;
  cfg.hw.cpus = 4;
  const core::SimResult r = core::simulate(t, cfg);
  const auto segs = r.thread_segments(1);
  ASSERT_FALSE(segs.empty());
  EXPECT_EQ(segs.back().end, r.total);
  SimTime running;
  for (const auto& s : segs) {
    if (s.state == core::SegState::kRunning) running += s.end - s.start;
  }
  EXPECT_EQ(running, SimTime::millis(3));
}

}  // namespace
}  // namespace vppb
