// Tests for the workload programs themselves: they must run correctly
// on the one-LWP runtime, be deterministic, scale their trace structure
// with the thread count, and show the qualitative speed-up shapes of
// the paper's applications.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "workloads/prodcons.hpp"
#include "workloads/splash.hpp"
#include "workloads/synthetic.hpp"

namespace vppb::workloads {
namespace {

trace::Trace record(const std::function<void()>& fn) {
  sol::Program program;
  return rec::record_program(program, fn);
}

TEST(SplashSuite, HasFivePaperApps) {
  const auto suite = splash_suite();
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].name, "Ocean");
  EXPECT_EQ(suite[1].name, "Water-spatial");
  EXPECT_EQ(suite[2].name, "FFT");
  EXPECT_EQ(suite[3].name, "Radix");
  EXPECT_EQ(suite[4].name, "LU");
}

TEST(SplashSuite, OneWorkerThreadPerProcessor) {
  for (const auto& app : splash_suite()) {
    for (int threads : {1, 3, 8}) {
      const trace::Trace t = record([&app, threads]() {
        app.run(SplashParams{threads, 0.05});
      });
      // main + workers (+ for FFT the coordinator is main itself).
      const auto expected = static_cast<std::size_t>(threads) + 1;
      EXPECT_EQ(t.threads.size(), expected) << app.name << "@" << threads;
    }
  }
}

TEST(SplashSuite, DeterministicTraces) {
  for (const auto& app : splash_suite()) {
    const auto run = [&app]() {
      return record([&app]() { app.run(SplashParams{4, 0.05}); });
    };
    const trace::Trace a = run();
    const trace::Trace b = run();
    ASSERT_EQ(a.records.size(), b.records.size()) << app.name;
    EXPECT_EQ(a.duration(), b.duration()) << app.name;
  }
}

TEST(SplashSuite, ScaleShrinksTimeNotStructure) {
  const trace::Trace big = record([]() { ocean(SplashParams{4, 0.2}); });
  const trace::Trace small = record([]() { ocean(SplashParams{4, 0.1}); });
  EXPECT_EQ(big.records.size(), small.records.size());
  EXPECT_GT(big.duration(), small.duration());
}

TEST(SplashSuite, TracesValidateAndReplay) {
  for (const auto& app : splash_suite()) {
    const trace::Trace t = record([&app]() {
      app.run(SplashParams{4, 0.05});
    });
    EXPECT_NO_THROW(t.validate()) << app.name;
    core::SimConfig cfg;
    cfg.hw.cpus = 4;
    const core::SimResult r = core::simulate(t, cfg);
    r.validate();
    EXPECT_GT(r.speedup, 1.0) << app.name;
  }
}

TEST(SplashShapes, FftIsAmdahlLimited) {
  // The paper's FFT row: 1.55 / 2.14 / 2.62 — consistent with a ~29%
  // serial fraction.  Check both the absolute band and the saturation.
  auto speedup_at = [](int cpus) {
    const trace::Trace t = record([cpus]() { fft(SplashParams{cpus, 0.2}); });
    return core::predict_speedup(t, cpus);
  };
  const double s2 = speedup_at(2), s4 = speedup_at(4), s8 = speedup_at(8);
  EXPECT_NEAR(s2, 1.55, 0.12);
  EXPECT_NEAR(s4, 2.14, 0.2);
  EXPECT_NEAR(s8, 2.62, 0.25);
  EXPECT_LT(s8 - s4, s4 - s2) << "FFT must saturate";
}

TEST(SplashShapes, RadixNearLinear) {
  const trace::Trace t = record([]() { radix(SplashParams{8, 0.2}); });
  EXPECT_GT(core::predict_speedup(t, 8), 7.4);
}

TEST(SplashShapes, LuModerateFromShrinkingParallelism) {
  const trace::Trace t = record([]() { lu(SplashParams{8, 0.5}); });
  const double s8 = core::predict_speedup(t, 8);
  EXPECT_NEAR(s8, 4.82, 0.6);
}

TEST(SplashShapes, OceanGoodWithImbalance) {
  const trace::Trace t = record([]() { ocean(SplashParams{8, 0.2}); });
  const double s8 = core::predict_speedup(t, 8);
  EXPECT_GT(s8, 5.8);
  EXPECT_LT(s8, 7.3);
}

TEST(ProdCons, ItemAccountingIsExact) {
  // 150x10 items, 75 consumers -> 20 each; the program must terminate
  // with the semaphore drained.
  ProdConsParams p;
  p.producers = 10;
  p.consumers = 5;
  p.items_per_producer = 4;
  const trace::Trace t = record([&p]() { prodcons_naive(p); });
  const auto stats = trace::compute_stats(t);
  EXPECT_EQ(stats.per_op.at(trace::Op::kSemaPost), 40u);
  EXPECT_EQ(stats.per_op.at(trace::Op::kSemaWait), 40u);
}

TEST(ProdCons, RejectsUnevenSplit) {
  ProdConsParams p;
  p.producers = 3;
  p.consumers = 7;
  p.items_per_producer = 5;
  EXPECT_THROW(record([&p]() { prodcons_naive(p); }), Error);
}

TEST(ProdCons, NaiveSerializesTunedScales) {
  ProdConsParams p;
  p.producers = 40;
  p.consumers = 20;
  const trace::Trace naive = record([&p]() { prodcons_naive(p); });
  const trace::Trace tuned = record([&p]() { prodcons_tuned(p); });
  const double naive_s = core::predict_speedup(naive, 8);
  const double tuned_s = core::predict_speedup(tuned, 8);
  EXPECT_LT(naive_s, 1.2) << "one hot mutex (paper: 2.2% faster)";
  EXPECT_GT(tuned_s, 6.0) << "100 buffers (paper: 7.75x)";
}

TEST(Synthetic, ForkJoinIdealSpeedup) {
  const trace::Trace t = record([]() { fork_join(4, SimTime::millis(10)); });
  EXPECT_NEAR(core::predict_speedup(t, 4), 4.0, 0.1);
}

TEST(Synthetic, PipelineThroughputBoundedByStages) {
  const trace::Trace t = record([]() {
    pipeline(3, 30, SimTime::millis(1));
  });
  const double s8 = core::predict_speedup(t, 8);
  EXPECT_GT(s8, 1.5);
  EXPECT_LT(s8, 3.2) << "3 stages cannot exceed 3x";
}

TEST(Synthetic, ImbalanceCapsSpeedup) {
  // Worker i computes work*(1 + skew*i/(N-1)); the makespan on N CPUs is
  // the slowest worker: speedup = sum(factors) / max(factor).
  const int n = 4;
  const double skew = 1.0;  // slowest does 2x the work
  const trace::Trace t = record([n]() {
    imbalanced(n, SimTime::millis(10), 1.0);
  });
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += 1.0 + skew * i / (n - 1);
  const double expected = sum / 2.0;
  EXPECT_NEAR(core::predict_speedup(t, n), expected, 0.15);
}

TEST(Synthetic, ReadersScaleWriterSerializes) {
  const trace::Trace readers_only = record([]() {
    readers_writer(4, 10, SimTime::millis(1), 0, SimTime::zero());
  });
  EXPECT_GT(core::predict_speedup(readers_only, 4), 3.0)
      << "read-sharing must scale";
  const trace::Trace with_writer = record([]() {
    readers_writer(4, 10, SimTime::millis(1), 10, SimTime::millis(2));
  });
  EXPECT_LT(core::predict_speedup(with_writer, 4),
            core::predict_speedup(readers_only, 4));
}

TEST(Synthetic, PriorityClassesRecordSetprio) {
  const trace::Trace t = record([]() {
    priority_classes(2, 2, SimTime::millis(2));
  });
  const auto stats = trace::compute_stats(t);
  EXPECT_EQ(stats.per_op.at(trace::Op::kThrSetPrio), 4u);
}

}  // namespace
}  // namespace vppb::workloads
