// Stress-label flood test (`ctest -L stress`): 8 concurrent clients —
// half healthy, half flooding a trace that always blows the step
// budget — against one governed vppbd.  The healthy clients' digests
// must stay bit-identical to the offline CLI path throughout; the
// flooders must only ever see typed governance outcomes
// (kBudgetExceeded, then kPoisoned once the breaker trips, or
// kOverloaded from their shared per-client quota), and after the
// quarantine window decays the poisoned content must be admissible
// again.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/compiler.hpp"
#include "core/engine.hpp"
#include "recorder/recorder.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "solaris/program.hpp"
#include "trace/binary.hpp"
#include "util/time.hpp"
#include "workloads/splash.hpp"
#include "workloads/synthetic.hpp"

namespace vppb {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    static std::atomic<int> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("vppb_flood_" + tag + "_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter.fetch_add(1))))
                .string();
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

trace::Trace record(const std::function<void()>& fn) {
  sol::Program program;
  return rec::record_program(program, fn);
}

TEST(FloodTest, HealthyClientsStayBitIdenticalWhileFloodersAreGoverned) {
  const trace::Trace healthy = record([] {
    workloads::fork_join(3, SimTime::millis(1));
  });
  const trace::Trace flood = record([] {
    workloads::fft(workloads::SplashParams{8, 0.2});
  });
  TempFile healthy_file("healthy");
  TempFile flood_file("flood");
  trace::save_binary_file(healthy, healthy_file.path());
  trace::save_binary_file(flood, flood_file.path());

  // Offline reference for the healthy request, plus the step counts
  // that let us pick a budget the healthy trace clears and the flood
  // trace cannot.
  core::SimConfig cfg;
  cfg.hw.cpus = 4;
  const core::SimResult healthy_ref =
      core::simulate(core::compile(healthy), cfg);
  const core::SimResult flood_ref = core::simulate(core::compile(flood), cfg);
  const std::uint64_t offline_digest = core::digest(healthy_ref);
  ASSERT_LT(healthy_ref.engine.steps * 2, flood_ref.engine.steps)
      << "flood workload must dwarf the healthy one for the budget to "
         "separate them";

  TempFile sock("sock");
  server::ServerOptions opt;
  opt.unix_path = sock.path();
  opt.jobs = 4;
  opt.max_steps = healthy_ref.engine.steps * 2;
  opt.per_client_limit = 2;
  opt.poison_strikes = 3;
  opt.quarantine_ms = 400;
  opt.watchdog_interval_ms = 10;
  server::Server srv(opt);
  srv.start();

  constexpr int kHealthyClients = 4;
  constexpr int kFlooders = 4;
  constexpr int kRequestsEach = 8;
  std::atomic<int> healthy_bad{0};
  std::atomic<int> flood_unexpected{0};
  std::atomic<int> poisoned_seen{0};
  std::atomic<int> flood_kills{0};

  std::vector<std::thread> threads;
  for (int c = 0; c < kHealthyClients; ++c) {
    threads.emplace_back([&, c]() {
      server::Client client = server::Client::connect_unix(sock.path());
      server::Request req;
      req.type = server::ReqType::kSimulate;
      req.trace_path = healthy_file.path();
      req.cpus = 4;
      req.client_id = static_cast<std::uint64_t>(c + 1);
      for (int i = 0; i < kRequestsEach; ++i) {
        const server::Response r = client.call(req);
        if (r.status != server::Status::kOk || r.digest != offline_digest) {
          ++healthy_bad;
        }
      }
    });
  }
  for (int c = 0; c < kFlooders; ++c) {
    threads.emplace_back([&]() {
      server::Client client = server::Client::connect_unix(sock.path());
      server::Request req;
      req.type = server::ReqType::kSimulate;
      req.trace_path = flood_file.path();
      req.cpus = 4;
      req.client_id = 99;  // all flooders share one identity (and quota)
      for (int i = 0; i < kRequestsEach; ++i) {
        const server::Response r = client.call(req);
        switch (r.status) {
          case server::Status::kBudgetExceeded:
            ++flood_kills;
            break;
          case server::Status::kPoisoned:
            ++poisoned_seen;
            break;
          case server::Status::kOverloaded:
            break;  // the shared per-client quota pushing back
          default:
            ++flood_unexpected;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Healthy traffic was never degraded by the flood; flooders only ever
  // saw typed governance outcomes, and enough budget kills accumulated
  // to trip the breaker at least once.
  EXPECT_EQ(healthy_bad.load(), 0);
  EXPECT_EQ(flood_unexpected.load(), 0);
  EXPECT_GE(flood_kills.load(), opt.poison_strikes);
  EXPECT_GE(poisoned_seen.load(), 1);

  server::Client client = server::Client::connect_unix(sock.path());
  server::Request stats;
  stats.type = server::ReqType::kStats;
  const server::Response s = client.call(stats);
  EXPECT_GE(s.stats.budget_kills, static_cast<std::uint64_t>(
                                      opt.poison_strikes));
  EXPECT_GE(s.stats.poisoned, static_cast<std::uint64_t>(poisoned_seen.load()));
  EXPECT_GE(s.stats.poison_strikes, static_cast<std::uint64_t>(
                                        opt.poison_strikes));

  // Recovery: past the quarantine window the strike count halves below
  // the trip threshold, so the flood trace is admissible again — it
  // reaches the engine (and trips the budget) instead of being turned
  // away at the door.  Healthy traffic is still bit-identical.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  server::Request flood_req;
  flood_req.type = server::ReqType::kSimulate;
  flood_req.trace_path = flood_file.path();
  flood_req.cpus = 4;
  const server::Response recovered = client.call(flood_req);
  EXPECT_EQ(recovered.status, server::Status::kBudgetExceeded)
      << recovered.error;

  server::Request healthy_req;
  healthy_req.type = server::ReqType::kSimulate;
  healthy_req.trace_path = healthy_file.path();
  healthy_req.cpus = 4;
  const server::Response ok = client.call(healthy_req);
  EXPECT_EQ(ok.status, server::Status::kOk) << ok.error;
  EXPECT_EQ(ok.digest, offline_digest);
  srv.stop();
}

}  // namespace
}  // namespace vppb
