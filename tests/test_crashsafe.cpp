// Crash-safety end-to-end: a recorded target that dies — SIGKILL
// between chunks, SIGSEGV inside one — must leave a log the salvaging
// loader can recover, and a dying writer must never clobber a previous
// good log.  Each scenario forks: the child is the dying target, the
// parent the crash investigator.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "trace/binary.hpp"
#include "trace/chunked.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace vppb::rec {
namespace {

using trace::IssueKind;
using trace::LoadOptions;
using trace::LoadReport;
using trace::Op;
using trace::Phase;
using trace::Record;
using trace::Trace;

std::string temp_path(const char* name) {
  return testing::TempDir() + "/vppb_crashsafe_" + name + "_" +
         std::to_string(::getpid()) + ".log";
}

Record make_record(std::int64_t us, trace::ThreadId tid, Op op) {
  Record r;
  r.at = SimTime::micros(us);
  r.tid = tid;
  r.phase = Phase::kCall;
  r.op = op;
  return r;
}

/// A trace of n single-op records (user marks) from one thread.
Trace marks_trace(int n) {
  Trace t;
  t.upsert_thread(1).name = t.strings.intern("main");
  for (int i = 0; i < n; ++i)
    t.records.push_back(make_record(10 * (i + 1), 1, Op::kUserMark));
  return t;
}

void fig2_like_work() {
  auto worker = []() -> void* {
    sol::compute(SimTime::micros(200));
    return nullptr;
  };
  sol::thread_t a = 0, b = 0;
  sol::thr_create_fn(worker, 0, &a, "thread");
  sol::thr_create_fn(worker, 0, &b, "thread");
  sol::thr_join(a, nullptr, nullptr);
  sol::thr_join(b, nullptr, nullptr);
}

int wait_for(pid_t pid) {
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  return status;
}

TEST(CrashSafe, NormalFinishProducesStrictlyLoadableLog) {
  const std::string path = temp_path("finish");
  Recorder::Options opts;
  opts.live_log_path = path;
  opts.live_chunk_records = 4;
  sol::Program program;
  const Trace t = record_program(program, fig2_like_work, opts);
  ASSERT_FALSE(t.records.empty());

  // finalize() ran inside finish(): the final path loads strictly and
  // holds every record the in-memory trace holds.
  const Trace back = trace::load_any_file(path);
  EXPECT_EQ(back.records.size(), t.records.size());
  for (std::size_t i = 0; i < t.records.size(); ++i) {
    EXPECT_EQ(back.records[i].at, t.records[i].at) << i;
    EXPECT_EQ(back.records[i].op, t.records[i].op) << i;
  }
  std::remove(path.c_str());
}

TEST(CrashSafe, SigkillBetweenChunksLeavesSalvageablePartial) {
  const std::string path = temp_path("sigkill");
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: stream 10 records in 4-record chunks, then die the hardest
    // way there is — no atexit, no destructors, no signal handlers.
    trace::ChunkedWriterOptions wopt;
    wopt.chunk_records = 4;
    trace::ChunkedWriter w(path, wopt);
    const Trace t = marks_trace(10);
    w.sync_tables(t);
    for (const Record& r : t.records) w.add_record(r);
    ::kill(::getpid(), SIGKILL);
    ::_exit(99);  // unreachable
  }
  const int status = wait_for(pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // finalize() never ran: the evidence is the ".partial" file, holding
  // the two sealed chunks (8 of 10 records).
  LoadOptions opt;
  opt.salvage = true;
  LoadReport report;
  const Trace back = trace::load_any_file(path + ".partial", opt, &report);
  EXPECT_EQ(back.records.size(), 8u);
  EXPECT_EQ(report.records_recovered, 8u);
  EXPECT_GE(report.chunks_loaded, 2u);
  EXPECT_NO_THROW(back.validate());
  std::remove((path + ".partial").c_str());
}

TEST(CrashSafe, SigsegvMidRunSealsAndPublishesLog) {
  const std::string path = temp_path("sigsegv");
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    Recorder::Options opts;
    opts.live_log_path = path;
    opts.live_chunk_records = 2;
    opts.install_crash_handlers = true;
    sol::Program program;
    record_program(program,
                   []() {
                     fig2_like_work();
                     ::raise(SIGSEGV);  // crash inside the workload
                   },
                   opts);
    ::_exit(99);  // unreachable: the re-raised SIGSEGV kills the child
  }
  const int status = wait_for(pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  // The crash handler sealed the pending chunk and renamed the log into
  // place; salvage recovers the work done before the crash.
  LoadOptions opt;
  opt.salvage = true;
  LoadReport report;
  const Trace back = trace::load_any_file(path, opt, &report);
  EXPECT_GT(back.records.size(), 0u);
  EXPECT_GT(report.records_recovered, 0u);
  EXPECT_NO_THROW(back.validate());
  // The recovered prefix contains real work, not just the header.
  bool saw_create = false;
  for (const Record& r : back.records)
    saw_create |= r.op == Op::kThrCreate;
  EXPECT_TRUE(saw_create);
  std::remove(path.c_str());
}

TEST(CrashSafe, DyingWriterNeverClobbersPreviousGoodLog) {
  const std::string path = temp_path("noclobber");
  // A previous run left a good log at `path`.
  {
    trace::ChunkedWriter w(path);
    const Trace t = marks_trace(6);
    w.sync_tables(t);
    for (const Record& r : t.records) w.add_record(r);
    w.finalize();
  }
  const Trace good = trace::load_any_file(path);
  ASSERT_EQ(good.records.size(), 6u);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: a new recording starts over the same path but dies before
    // a single chunk is sealed.  crash_seal() must refuse to rename an
    // effectively-empty log over the good one.
    trace::ChunkedWriter w(path);
    w.crash_seal();
    ::kill(::getpid(), SIGKILL);
    ::_exit(99);
  }
  const int status = wait_for(pid);
  ASSERT_TRUE(WIFSIGNALED(status));

  // The previous good log survived; the dying run left only a stub.
  const Trace still_good = trace::load_any_file(path);
  EXPECT_EQ(still_good.records.size(), 6u);
  std::remove(path.c_str());
  std::remove((path + ".partial").c_str());
}

}  // namespace
}  // namespace vppb::rec
