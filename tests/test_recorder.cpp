// Integration tests: Recorder attached around the solaris API while a
// program runs on the one-LWP runtime — the paper's fig. 2 workflow.
#include <gtest/gtest.h>

#include <algorithm>

#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"

namespace vppb::rec {
namespace {

using trace::Op;
using trace::Phase;

// The example program of the paper's fig. 2: main creates two threads
// that each do some work and exit; main joins both.
void fig2_program() {
  auto worker = []() -> void* {
    sol::compute(SimTime::micros(400));
    return nullptr;
  };
  sol::thread_t thr_a = 0, thr_b = 0;
  sol::thr_create_fn(worker, 0, &thr_a, "thread");
  sol::thr_create_fn(worker, 0, &thr_b, "thread");
  sol::thr_join(thr_a, nullptr, nullptr);
  sol::thr_join(thr_b, nullptr, nullptr);
}

trace::Trace record_fig2() {
  sol::Program program;
  return record_program(program, fig2_program);
}

std::vector<const trace::Record*> calls_of(const trace::Trace& t, Op op) {
  std::vector<const trace::Record*> out;
  for (const auto& r : t.records) {
    if (r.op == op && r.phase == Phase::kCall) out.push_back(&r);
  }
  return out;
}

TEST(RecorderTest, Fig2EventSequence) {
  const trace::Trace t = record_fig2();
  t.validate();

  // First record is start_collect, last is end_collect (paper fig. 2).
  ASSERT_FALSE(t.records.empty());
  EXPECT_EQ(t.records.front().op, Op::kStartCollect);
  EXPECT_EQ(t.records.back().op, Op::kEndCollect);

  // Two creates by main returning ids 4 and 5.
  const auto creates = calls_of(t, Op::kThrCreate);
  ASSERT_EQ(creates.size(), 2u);
  std::vector<std::int64_t> created;
  for (const auto& r : t.records) {
    if (r.op == Op::kThrCreate && r.phase == Phase::kReturn)
      created.push_back(r.arg);
  }
  EXPECT_EQ(created, (std::vector<std::int64_t>{4, 5}));

  // Three thr_exit records: T4, T5 and main's implicit one.
  const auto exits = calls_of(t, Op::kThrExit);
  ASSERT_EQ(exits.size(), 3u);
  std::vector<trace::ThreadId> exit_tids;
  for (const auto* r : exits) exit_tids.push_back(r->tid);
  std::sort(exit_tids.begin(), exit_tids.end());
  EXPECT_EQ(exit_tids, (std::vector<trace::ThreadId>{1, 4, 5}));

  // Two joins, and their returns carry the departed thread.
  std::vector<std::int64_t> departed;
  for (const auto& r : t.records) {
    if (r.op == Op::kThrJoin && r.phase == Phase::kReturn)
      departed.push_back(r.arg);
  }
  EXPECT_EQ(departed, (std::vector<std::int64_t>{4, 5}));
}

TEST(RecorderTest, ThreadMetadataRecorded) {
  const trace::Trace t = record_fig2();
  ASSERT_EQ(t.threads.size(), 3u);
  const trace::ThreadMeta* main_meta = t.find_thread(1);
  ASSERT_NE(main_meta, nullptr);
  EXPECT_EQ(t.strings.get(main_meta->name), "main");
  const trace::ThreadMeta* t4 = t.find_thread(4);
  ASSERT_NE(t4, nullptr);
  EXPECT_EQ(t.strings.get(t4->start_func), "thread");
  EXPECT_FALSE(t4->bound);
}

TEST(RecorderTest, BoundFlagRecorded) {
  sol::Program program;
  const trace::Trace t = record_program(program, []() {
    sol::thread_t tid = 0;
    sol::thr_create_fn([]() -> void* { return nullptr; }, sol::THR_BOUND,
                       &tid, "bound_worker");
    sol::thr_join(tid, nullptr, nullptr);
  });
  const trace::ThreadMeta* meta = t.find_thread(4);
  ASSERT_NE(meta, nullptr);
  EXPECT_TRUE(meta->bound);
}

TEST(RecorderTest, SourceLocationsCaptured) {
  const trace::Trace t = record_fig2();
  const auto creates = calls_of(t, Op::kThrCreate);
  ASSERT_FALSE(creates.empty());
  const std::string loc = t.location_string(*creates[0]);
  EXPECT_NE(loc.find("test_recorder.cpp:"), std::string::npos) << loc;
}

TEST(RecorderTest, LocationsCanBeDisabled) {
  sol::Program program;
  Recorder::Options opts;
  opts.capture_locations = false;
  const trace::Trace t = record_program(program, fig2_program, opts);
  for (const auto& r : t.records) EXPECT_EQ(r.loc, 0u);
}

TEST(RecorderTest, SyncObjectEventsCarryIds) {
  sol::Program program;
  const trace::Trace t = record_program(program, []() {
    sol::Mutex m1, m2;
    sol::ScopedLock a(m1);
    sol::ScopedLock b(m2);
  });
  const auto locks = calls_of(t, Op::kMutexLock);
  ASSERT_EQ(locks.size(), 2u);
  EXPECT_EQ(locks[0]->obj.kind, trace::ObjKind::kMutex);
  EXPECT_NE(locks[0]->obj.id, locks[1]->obj.id);
}

TEST(RecorderTest, TrylockOutcomeRecorded) {
  sol::Program program;
  const trace::Trace t = record_program(program, []() {
    sol::Mutex m;
    EXPECT_TRUE(m.try_lock());   // outcome 1
    sol::thr_create_fn(
        [&m]() -> void* {
          m.try_lock();          // outcome 0: held by main
          return nullptr;
        },
        0, nullptr);
    sol::join_all();
    m.unlock();
  });
  std::vector<std::int64_t> outcomes;
  for (const auto& r : t.records) {
    if (r.op == Op::kMutexTrylock && r.phase == Phase::kReturn)
      outcomes.push_back(r.arg);
  }
  EXPECT_EQ(outcomes, (std::vector<std::int64_t>{1, 0}));
}

TEST(RecorderTest, TimedWaitOutcomeRecorded) {
  sol::Program program;
  const trace::Trace t = record_program(program, []() {
    sol::Mutex m;
    sol::CondVar c;
    m.lock();
    c.timed_wait(m, SimTime::millis(1));  // will time out
    m.unlock();
  });
  bool found = false;
  for (const auto& r : t.records) {
    if (r.op == Op::kCondTimedwait && r.phase == Phase::kReturn) {
      EXPECT_EQ(r.arg, 0) << "timed out must record outcome 0";
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RecorderTest, BlockingCallSpansBlockedInterval) {
  sol::Program program;
  const trace::Trace t = record_program(program, []() {
    sol::Semaphore s(0);
    sol::thr_create_fn(
        [&s]() -> void* {
          sol::compute(SimTime::micros(500));
          s.post();
          return nullptr;
        },
        0, nullptr);
    s.wait();  // blocks ~500us while the child computes
    sol::join_all();
  });
  SimTime call_at, ret_at;
  for (const auto& r : t.records) {
    if (r.op == Op::kSemaWait && r.tid == 1) {
      if (r.phase == Phase::kCall) call_at = r.at;
      if (r.phase == Phase::kReturn) ret_at = r.at;
    }
  }
  EXPECT_GE(ret_at - call_at, SimTime::micros(500));
}

TEST(RecorderTest, UserMarksCarryLabels) {
  sol::Program program;
  const trace::Trace t = record_program(program, []() {
    sol::mark("phase-one");
    sol::compute(SimTime::micros(10));
    sol::mark("phase-two");
  });
  std::vector<std::string> labels;
  for (const auto& r : t.records) {
    if (r.op == Op::kUserMark)
      labels.push_back(t.strings.get(static_cast<std::uint32_t>(r.arg)));
  }
  EXPECT_EQ(labels, (std::vector<std::string>{"phase-one", "phase-two"}));
}

TEST(RecorderTest, TraceSurvivesTextRoundTrip) {
  const trace::Trace t = record_fig2();
  const trace::Trace back = trace::from_text(trace::to_text(t));
  EXPECT_EQ(back.records.size(), t.records.size());
  EXPECT_EQ(back.duration(), t.duration());
  EXPECT_EQ(trace::to_text(back), trace::to_text(t));
}

TEST(RecorderTest, NoSinkMeansNoOverheadPath) {
  // Without an attached recorder the program must run identically.
  sol::Program a, b;
  a.run(fig2_program);
  Recorder recorder;
  {
    Recorder::Scope scope(recorder);
    b.run(fig2_program);
  }
  const trace::Trace t = recorder.finish(b.last_duration());
  EXPECT_EQ(a.last_duration(), b.last_duration())
      << "virtual-clock recording must not perturb the execution";
  EXPECT_GT(t.records.size(), 0u);
}

TEST(RecorderTest, ReusableAfterFinish) {
  Recorder recorder;
  sol::Program program;
  {
    Recorder::Scope scope(recorder);
    program.run(fig2_program);
  }
  const auto first = recorder.finish(program.last_duration());
  {
    Recorder::Scope scope(recorder);
    program.run(fig2_program);
  }
  const auto second = recorder.finish(program.last_duration());
  EXPECT_EQ(trace::to_text(first), trace::to_text(second));
}

TEST(RecorderTest, DoubleAttachRejected) {
  Recorder r1, r2;
  Recorder::Scope s1(r1);
  EXPECT_THROW(Recorder::Scope s2(r2), Error);
}

}  // namespace
}  // namespace vppb::rec
