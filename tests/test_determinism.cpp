// Golden-digest determinism tests for the Simulator.
//
// Every case records a workload, simulates it under a specific
// configuration and compares core::digest(SimResult) — an
// order-sensitive fingerprint of every field, segment and event —
// against a value pinned in golden_cases.hpp (shared with the guard
// parity suite).  The goldens were captured from the straightforward
// sort-per-step scheduler the engine started with, so they lock the
// dispatch-queue scheduler (and any later rewrite) to bit-identical
// results: same speed-up, same totals, same segments in the same
// order, same per-thread statistics.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/result.hpp"
#include "golden_cases.hpp"
#include "solaris/solaris.hpp"
#include "trace/binary.hpp"

namespace vppb::core {
namespace {

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

TEST(DeterminismTest, GoldenDigests) {
  for (const GoldenCase& gc : kGoldenCases) {
    const CompiledTrace compiled = record_compiled(gc.workload);
    SimConfig cfg;
    gc.configure(cfg);
    const std::uint64_t actual = digest(simulate(compiled, cfg));
    EXPECT_EQ(actual, gc.golden)
        << gc.name << ": actual digest " << hex(actual) << " (golden "
        << hex(gc.golden) << ")";
  }
}

TEST(DeterminismTest, RepeatedSimulationIsBitIdentical) {
  const CompiledTrace compiled = record_compiled([] {
    workloads::fft(workloads::SplashParams{8, 0.2});
  });
  SimConfig cfg;
  cfg.hw.cpus = 4;
  const std::uint64_t first = digest(simulate(compiled, cfg));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(digest(simulate(compiled, cfg)), first) << "run " << i;
  }
}

TEST(DeterminismTest, RepeatedRecordingIsBitIdentical) {
  auto workload = [] { workloads::ocean(workloads::SplashParams{4, 0.1}); };
  SimConfig cfg;
  cfg.hw.cpus = 4;
  const std::uint64_t first =
      digest(simulate(record_compiled(workload), cfg));
  EXPECT_EQ(digest(simulate(record_compiled(workload), cfg)), first);
}

TEST(DeterminismTest, SalvagedPrefixSimulatesDeterministically) {
  // Salvage is part of the prediction pipeline: the same damaged log
  // must always recover the same prefix and simulate to the same
  // digest, or a crash investigation would chase a moving target.
  sol::Program program;
  const trace::Trace t = rec::record_program(program, [] {
    workloads::fork_join(4, SimTime::millis(2));
  });
  std::vector<std::uint8_t> bytes = trace::to_binary(t);
  bytes.resize(bytes.size() - 9);  // torn tail, as a crash would leave

  trace::LoadOptions opt;
  opt.salvage = true;
  SimConfig cfg;
  cfg.hw.cpus = 4;
  trace::LoadReport first_report;
  const trace::Trace first_trace =
      trace::from_binary(bytes.data(), bytes.size(), opt, &first_report);
  ASSERT_GT(first_report.records_recovered, 0u);
  const std::uint64_t first = digest(simulate(compile(first_trace), cfg));
  for (int i = 0; i < 3; ++i) {
    trace::LoadReport report;
    const trace::Trace again =
        trace::from_binary(bytes.data(), bytes.size(), opt, &report);
    EXPECT_EQ(report.records_recovered, first_report.records_recovered);
    EXPECT_EQ(report.records_dropped, first_report.records_dropped);
    EXPECT_EQ(digest(simulate(compile(again), cfg)), first) << "run " << i;
  }
}

}  // namespace
}  // namespace vppb::core
