// Deterministic chaos harness for the cluster tier: a real LocalCluster
// (forked vppbd shards) behind a real Proxy, driven through a scripted,
// seeded fault schedule while a client keeps issuing compute requests.
//
// Fault vocabulary, by --schedule:
//
//   killer   SIGKILL a shard (crash), later restart it — the crash-loop
//            path, including the launcher's restart backoff.
//   gray     SIGSTOP a shard (gray failure: sockets stay open, nothing
//            answers — only timeouts can tell it from healthy), later
//            SIGCONT it; plus VPPB_FAULT frame corruption and service
//            delays inside every shard.
//   mixed    both at once (at most one crashed and one paused shard at
//            any moment, so the 4-shard default always has quorum).
//   partition  network faults instead of process faults: two shards sit
//            behind netem relays — one gets a 2 s full partition
//            mid-run (existing connections cut, new ones black-holed),
//            the other a lossy, slow link (5% seeded connection drop +
//            50 ms per-chunk delay) for the whole run.  The shard
//            processes stay healthy throughout; every fault is in the
//            wire.
//
// The schedule — which step kills, pauses, restarts, resumes which
// shard — is a pure function of --seed: the same seed replays the same
// fault sequence.  Wall-clock timing still varies with the OS, so the
// invariants below are timing-independent:
//
//   1. digest parity: every client-visible kOk response (including
//      brownout stale serves) is digest-identical to the offline
//      answer for that trace;
//   2. bounded unavailability: the end-to-end error rate (after client
//      retries) stays at or below --max-error-rate;
//   3. reconvergence: once the schedule ends and every fault is lifted,
//      the cluster returns to all-shards-live with fresh epochs for
//      every crashed shard and zero quarantined entries, within
//      --converge-ms.
//
// Exit 0 iff all invariants hold; a JSON availability report (consumed
// by tools/bench_gate --max-error-rate) is written to --out.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/launcher.hpp"
#include "cluster/proxy.hpp"
#include "recorder/recorder.hpp"
#include "server/client.hpp"
#include "server/handlers.hpp"
#include "server/protocol.hpp"
#include "server/trace_cache.hpp"
#include "solaris/program.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"
#include "util/netem.hpp"
#include "workloads/synthetic.hpp"

#ifndef VPPB_EXE
#define VPPB_EXE ""
#endif

namespace vppb {
namespace {

std::uint64_t g_rng = 1;

std::uint64_t next_rand() {
  std::uint64_t x = g_rng;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  g_rng = x;
  return x * 0x2545f4914f6cdd1dULL;
}

struct Options {
  std::uint64_t seed = 1;
  std::string schedule = "mixed";  // killer | gray | mixed
  int steps = 120;
  int shards = 4;
  double max_error_rate = 0.10;
  std::int64_t converge_ms = 20000;
  std::string out;  // JSON report path
};

struct TraceCase {
  std::string path;
  std::uint64_t digest = 0;
};

server::Request predict_request(const std::string& path) {
  server::Request req;
  req.type = server::ReqType::kPredict;
  req.trace_path = path;
  req.max_cpus = 4;
  return req;
}

/// Records distinct fork-join traces and computes the offline digest
/// each cluster answer must match bit-for-bit.
std::vector<TraceCase> make_traces(const std::string& dir, int n) {
  std::vector<TraceCase> cases;
  server::TraceCache cache(static_cast<std::size_t>(n), 256u << 20);
  for (int i = 0; i < n; ++i) {
    TraceCase c;
    c.path = dir + "/chaos" + std::to_string(i) + ".trace";
    sol::Program program;
    const trace::Trace t = rec::record_program(program, [&]() {
      workloads::fork_join(2 + i % 3, SimTime::micros(150 + 31 * i));
    });
    trace::save_file(t, c.path);
    const server::Response offline =
        server::handle_predict(predict_request(c.path), cache);
    if (offline.status != server::Status::kOk)
      throw Error("offline predict failed: " + offline.error);
    c.digest = offline.digest;
    cases.push_back(std::move(c));
  }
  return cases;
}

struct Report {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t ok_stale = 0;
  std::uint64_t errors = 0;  // typed failures + transport, post-retry
  std::uint64_t digest_mismatches = 0;
  std::uint64_t kills = 0, restarts = 0, pauses = 0, resumes = 0;
  std::uint64_t netem_cut = 0, netem_blackholed_bytes = 0;
  bool reconverged = false;
  bool quarantine_drained = false;
  bool epochs_fresh = false;

  double error_rate() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(errors) / static_cast<double>(requests);
  }
};

void write_report(const Options& opt, const Report& r, bool pass) {
  if (opt.out.empty()) return;
  std::ofstream out(opt.out, std::ios::trunc);
  out << "{\n"
      << "  \"seed\": " << opt.seed << ",\n"
      << "  \"schedule\": \"" << opt.schedule << "\",\n"
      << "  \"steps\": " << opt.steps << ",\n"
      << "  \"shards\": " << opt.shards << ",\n"
      << "  \"requests\": " << r.requests << ",\n"
      << "  \"ok\": " << r.ok << ",\n"
      << "  \"ok_stale\": " << r.ok_stale << ",\n"
      << "  \"errors\": " << r.errors << ",\n"
      << "  \"error_rate\": " << r.error_rate() << ",\n"
      << "  \"digest_mismatches\": " << r.digest_mismatches << ",\n"
      << "  \"kills\": " << r.kills << ",\n"
      << "  \"restarts\": " << r.restarts << ",\n"
      << "  \"pauses\": " << r.pauses << ",\n"
      << "  \"resumes\": " << r.resumes << ",\n"
      << "  \"netem_cut\": " << r.netem_cut << ",\n"
      << "  \"netem_blackholed_bytes\": " << r.netem_blackholed_bytes
      << ",\n"
      << "  \"reconverged\": " << (r.reconverged ? "true" : "false") << ",\n"
      << "  \"epochs_fresh\": " << (r.epochs_fresh ? "true" : "false")
      << ",\n"
      << "  \"quarantine_drained\": "
      << (r.quarantine_drained ? "true" : "false") << ",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << "\n"
      << "}\n";
}

/// One client request through the proxy, with retries; classifies the
/// outcome into the report and checks digest parity on success.
void issue_request(const std::string& proxy_sock,
                   const std::vector<TraceCase>& traces, Report& rep) {
  const TraceCase& c = traces[next_rand() % traces.size()];
  ++rep.requests;
  server::Response r;
  try {
    server::Client client = server::Client::connect_unix(proxy_sock);
    server::RetryPolicy policy;
    policy.max_attempts = 4;
    policy.request_timeout_ms = 8000;
    r = client.call_retry(predict_request(c.path), policy);
  } catch (const Error&) {
    ++rep.errors;  // transport failure survived the retry budget
    return;
  }
  if (r.status != server::Status::kOk) {
    ++rep.errors;
    return;
  }
  ++rep.ok;
  if (r.served_stale) ++rep.ok_stale;
  if (r.digest != c.digest) {
    ++rep.digest_mismatches;
    std::fprintf(stderr,
                 "CHAOS: digest mismatch for %s (stale=%d shard=%llu): "
                 "got %016llx want %016llx\n",
                 c.path.c_str(), r.served_stale ? 1 : 0,
                 static_cast<unsigned long long>(r.shard_id),
                 static_cast<unsigned long long>(r.digest),
                 static_cast<unsigned long long>(c.digest));
  }
}

int run(const Options& opt) {
  if (std::strlen(VPPB_EXE) == 0) {
    std::fprintf(stderr, "CHAOS: VPPB_EXE not compiled in\n");
    return 2;
  }
  g_rng = opt.seed ? opt.seed : 1;

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("vppb_chaos_" + std::to_string(::getpid()) + "_" +
        std::to_string(opt.seed)))
          .string();
  std::filesystem::create_directories(dir);
  struct DirGuard {
    std::string d;
    ~DirGuard() {
      std::error_code ec;
      std::filesystem::remove_all(d, ec);
    }
  } guard{dir};

  const std::vector<TraceCase> traces = make_traces(dir, 6);

  cluster::ClusterOptions copt;
  copt.exe = VPPB_EXE;
  copt.dir = dir;
  copt.shards = opt.shards;
  copt.jobs = 1;
  // The schedule restarts shards far faster than an operator would:
  // keep the crash-loop backoff small (it still runs) and the refusal
  // threshold out of the way.
  copt.max_crash_restarts = 1 << 20;
  copt.restart_backoff_base_ms = 5;
  copt.restart_backoff_cap_ms = 40;
  copt.backoff_seed = opt.seed;
  if (opt.schedule == "gray" || opt.schedule == "mixed") {
    // In-shard faults for the gray schedules: every 23rd service
    // delayed 400 ms (trips hedges), every 41st reply frame corrupted
    // (trips decode errors -> ejection + failover).  The partition
    // schedule keeps shards pristine: its faults live in the wire.
    copt.env.emplace_back("VPPB_FAULT", "delay-ms:23:0:400,corrupt-frame:41");
  }
  cluster::LocalCluster shards(copt);
  shards.start();

  // The partition schedule interposes netem relays between the proxy
  // and two shards: the proxy dials the relay's socket believing it is
  // the shard, and the relay applies its fault schedule to the wire.
  const bool partitioned = opt.schedule == "partition";
  std::vector<std::unique_ptr<util::NetemRelay>> relays;
  std::vector<cluster::ShardEndpoint> endpoints = shards.shards();
  if (partitioned) {
    if (opt.shards < 3)
      throw Error("partition schedule needs at least 3 shards for quorum");
    const char* const schedules[2] = {
        // Shard 0: a 2 s total partition opening 1 s in — connections
        // alive at the window start are cut, connections opened inside
        // it are black-holed (accepted, nothing forwarded), then cut.
        "partition:1000:2000",
        // Shard 1: a bad link for the whole run — 5% of connections
        // seeded to drop after a random prefix, 50 ms added per chunk.
        "drop:5,delay-ms:50",
    };
    for (int i = 0; i < 2; ++i) {
      util::NetemOptions nopt;
      nopt.listen_unix = dir + "/netem" + std::to_string(i) + ".sock";
      nopt.target_unix = endpoints[static_cast<std::size_t>(i)].unix_path;
      nopt.schedule = schedules[i];
      nopt.seed = opt.seed + static_cast<std::uint64_t>(i);
      relays.push_back(std::make_unique<util::NetemRelay>(std::move(nopt)));
      relays.back()->start();
      endpoints[static_cast<std::size_t>(i)].unix_path =
          dir + "/netem" + std::to_string(i) + ".sock";
    }
  }

  const std::string proxy_sock = dir + "/chaos_proxy.sock";
  cluster::ProxyOptions popt;
  popt.unix_path = proxy_sock;
  popt.shards = endpoints;
  popt.replicas = 2;
  popt.hedge_ms = 100;
  popt.forward_timeout_ms = 1500;
  popt.brownout_min_live_pct = 50;
  popt.stale_ms = 60000;
  popt.membership.probe_base_ms = 10;
  popt.membership.probe_cap_ms = 100;
  popt.membership.seed = opt.seed;
  cluster::Proxy proxy(std::move(popt));
  proxy.start();

  std::vector<std::uint64_t> initial_epochs(
      static_cast<std::size_t>(opt.shards), 0);
  for (const auto& v : proxy.membership().snapshot()) {
    for (std::size_t i = 0; i < static_cast<std::size_t>(opt.shards); ++i)
      if (shards.shards()[i].id == v.endpoint.id)
        initial_epochs[i] = v.epoch;
  }

  Report rep;
  int down = -1;    // shard currently crashed (awaiting restart)
  int paused = -1;  // shard currently SIGSTOPped
  const bool kills = opt.schedule == "killer" || opt.schedule == "mixed";
  const bool grays = opt.schedule == "gray" || opt.schedule == "mixed";
  std::vector<bool> ever_killed(static_cast<std::size_t>(opt.shards), false);

  for (int step = 0; step < opt.steps; ++step) {
    // Fault event roughly every 8th step; the exact sequence is a pure
    // function of the seed.
    if (next_rand() % 8 == 0) {
      const bool act_kill = kills && (!grays || next_rand() % 2 == 0);
      if (act_kill) {
        if (down >= 0) {
          shards.restart_shard(static_cast<std::size_t>(down));
          ++rep.restarts;
          down = -1;
        } else {
          int victim = static_cast<int>(
              next_rand() % static_cast<std::uint64_t>(opt.shards));
          if (victim == paused) victim = (victim + 1) % opt.shards;
          shards.kill_shard(static_cast<std::size_t>(victim));
          ever_killed[static_cast<std::size_t>(victim)] = true;
          ++rep.kills;
          down = victim;
        }
      } else if (grays) {
        if (paused >= 0) {
          shards.resume_shard(static_cast<std::size_t>(paused));
          ++rep.resumes;
          paused = -1;
        } else {
          int victim = static_cast<int>(
              next_rand() % static_cast<std::uint64_t>(opt.shards));
          if (victim == down) victim = (victim + 1) % opt.shards;
          shards.pause_shard(static_cast<std::size_t>(victim));
          ++rep.pauses;
          paused = victim;
        }
      }
    }
    issue_request(proxy_sock, traces, rep);
    // Pace the partition run so the request stream spans the relay's
    // fault windows (the window clock is wall time, not steps).
    if (partitioned) std::this_thread::sleep_for(std::chrono::milliseconds(40));
    // Aggregate requests ride along: health/stats must answer through
    // any fault (they are never shed and tolerate down shards).
    if (step % 10 == 5) {
      try {
        server::Client client = server::Client::connect_unix(proxy_sock);
        server::Request health;
        health.type = server::ReqType::kHealth;
        server::RetryPolicy once;
        once.max_attempts = 1;
        once.request_timeout_ms = 8000;
        const server::Response h = client.call_retry(health, once);
        if (h.status != server::Status::kOk) {
          ++rep.errors;
          std::fprintf(stderr, "CHAOS: health answered %s during fault\n",
                       server::to_string(h.status));
        }
      } catch (const Error& e) {
        ++rep.errors;
        std::fprintf(stderr, "CHAOS: health transport error: %s\n",
                     e.what());
      }
    }
  }

  // Lift every fault and require reconvergence within the deadline.
  if (paused >= 0) {
    shards.resume_shard(static_cast<std::size_t>(paused));
    ++rep.resumes;
  }
  if (down >= 0) {
    shards.restart_shard(static_cast<std::size_t>(down));
    ++rep.restarts;
  }
  // Reconvergence is a *reachability* invariant: within the deadline
  // the cluster must pass through a stats fanout where every shard is
  // healthy, every crashed shard presents a fresh epoch, and no shard
  // still quarantines content keys.  A single early fanout can lag
  // (the proxy may first have to burn a stale pooled connection to a
  // corpse and let the prober re-admit it), so this polls.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opt.converge_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    bool healthy_all = true, fresh = true, drained = true;
    try {
      server::Client client = server::Client::connect_unix(proxy_sock);
      server::Request stats;
      stats.type = server::ReqType::kStats;
      server::RetryPolicy once;
      once.max_attempts = 1;
      once.request_timeout_ms = 8000;
      const server::Response s = client.call_retry(stats, once);
      if (s.status != server::Status::kOk ||
          s.shards.size() != static_cast<std::size_t>(opt.shards)) {
        healthy_all = false;
      } else {
        for (const server::ShardInfo& sh : s.shards) {
          if (!sh.healthy) healthy_all = false;
          if (sh.stats.quarantined != 0) drained = false;
          for (std::size_t i = 0; i < static_cast<std::size_t>(opt.shards);
               ++i) {
            if (shards.shards()[i].id != sh.shard_id) continue;
            if (ever_killed[i] && sh.epoch == initial_epochs[i])
              fresh = false;
          }
        }
      }
    } catch (const Error&) {
      healthy_all = false;
    }
    if (healthy_all && fresh && drained) {
      rep.reconverged = true;
      rep.epochs_fresh = true;
      rep.quarantine_drained = true;
      break;
    }
    rep.reconverged = healthy_all;  // last sample, for the report
    rep.epochs_fresh = fresh;
    rep.quarantine_drained = drained;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  if (!(rep.reconverged && rep.epochs_fresh && rep.quarantine_drained)) {
    std::fprintf(stderr,
                 "CHAOS: no converged fanout within %lld ms "
                 "(healthy=%d epochs_fresh=%d quarantine_drained=%d)\n",
                 static_cast<long long>(opt.converge_ms),
                 rep.reconverged ? 1 : 0, rep.epochs_fresh ? 1 : 0,
                 rep.quarantine_drained ? 1 : 0);
  }

  proxy.stop();
  for (auto& relay : relays) {
    rep.netem_cut += relay->cut_connections();
    rep.netem_blackholed_bytes += relay->blackholed_bytes();
    relay->stop();
  }
  shards.stop();

  // A partition run that never cut or black-holed anything proves
  // nothing: require evidence the wire faults actually fired.
  const bool faults_fired =
      !partitioned || rep.netem_cut + rep.netem_blackholed_bytes > 0;
  const bool pass = rep.digest_mismatches == 0 &&
                    rep.error_rate() <= opt.max_error_rate &&
                    rep.reconverged && rep.epochs_fresh &&
                    rep.quarantine_drained && faults_fired;
  write_report(opt, rep, pass);
  std::printf(
      "chaos_harness: schedule=%s seed=%llu steps=%d shards=%d | "
      "%llu requests, %llu ok (%llu stale), %llu errors (rate %.4f <= "
      "%.4f), %llu mismatches | kills %llu restarts %llu pauses %llu "
      "resumes %llu netem_cut %llu netem_blackholed %llu | "
      "reconverged=%d epochs_fresh=%d quarantine_drained=%d -> %s\n",
      opt.schedule.c_str(), static_cast<unsigned long long>(opt.seed),
      opt.steps, opt.shards,
      static_cast<unsigned long long>(rep.requests),
      static_cast<unsigned long long>(rep.ok),
      static_cast<unsigned long long>(rep.ok_stale),
      static_cast<unsigned long long>(rep.errors), rep.error_rate(),
      opt.max_error_rate,
      static_cast<unsigned long long>(rep.digest_mismatches),
      static_cast<unsigned long long>(rep.kills),
      static_cast<unsigned long long>(rep.restarts),
      static_cast<unsigned long long>(rep.pauses),
      static_cast<unsigned long long>(rep.resumes),
      static_cast<unsigned long long>(rep.netem_cut),
      static_cast<unsigned long long>(rep.netem_blackholed_bytes),
      rep.reconverged ? 1 : 0, rep.epochs_fresh ? 1 : 0,
      rep.quarantine_drained ? 1 : 0, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace vppb

int main(int argc, char** argv) {
  vppb::Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--seed") opt.seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--schedule") opt.schedule = value();
    else if (arg == "--steps") opt.steps = std::atoi(value());
    else if (arg == "--shards") opt.shards = std::atoi(value());
    else if (arg == "--max-error-rate") opt.max_error_rate = std::atof(value());
    else if (arg == "--converge-ms") opt.converge_ms = std::atoll(value());
    else if (arg == "--out") opt.out = value();
    else {
      std::fprintf(stderr,
                   "usage: chaos_harness [--seed N] "
                   "[--schedule killer|gray|mixed|partition] "
                   "[--steps N] [--shards N] "
                   "[--max-error-rate R] [--converge-ms N] [--out FILE]\n");
      return 2;
    }
  }
  if (opt.schedule != "killer" && opt.schedule != "gray" &&
      opt.schedule != "mixed" && opt.schedule != "partition") {
    std::fprintf(stderr, "chaos_harness: unknown schedule '%s'\n",
                 opt.schedule.c_str());
    return 2;
  }
  try {
    return vppb::run(opt);
  } catch (const vppb::Error& e) {
    std::fprintf(stderr, "chaos_harness: fatal: %s\n", e.what());
    return 1;
  }
}
