// util::Arena: the bump allocator behind the flat compiled program and
// the engine's SoA tables.  The contract under test: bump allocation
// with correct alignment, block chaining on overflow, and reset()
// recycling storage without giving any of it back to the heap.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/arena.hpp"

namespace vppb::util {
namespace {

TEST(Arena, HandsOutDistinctValueInitializedStorage) {
  Arena arena;
  int* a = arena.make_array<int>(16);
  int* b = arena.make_array<int>(16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a[i], 0);
    EXPECT_EQ(b[i], 0);
  }
  // Writes through one array must not alias the other.
  for (int i = 0; i < 16; ++i) a[i] = 100 + i;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(b[i], 0);
  EXPECT_EQ(arena.bytes_used(), 32 * sizeof(int));
}

TEST(Arena, RespectsAlignment) {
  Arena arena;
  // Force odd offsets between aligned requests.
  for (int i = 0; i < 10; ++i) {
    (void)arena.allocate(1, 1);
    void* p8 = arena.allocate(8, 8);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p8) % 8, 0u);
    void* p64 = arena.allocate(16, 64);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p64) % 64, 0u);
  }
}

TEST(Arena, ChainsBlocksWhenTheFirstOverflows) {
  Arena arena(/*first_block_bytes=*/128);
  std::vector<unsigned char*> chunks;
  // 64 allocations of 64 bytes overflow a 128-byte first block many
  // times over; every chunk must remain independently writable.
  for (int i = 0; i < 64; ++i) {
    unsigned char* p = static_cast<unsigned char*>(arena.allocate(64, 8));
    std::memset(p, i, 64);
    chunks.push_back(p);
  }
  for (int i = 0; i < 64; ++i) {
    for (int k = 0; k < 64; ++k)
      ASSERT_EQ(chunks[static_cast<std::size_t>(i)][k], i);
  }
  EXPECT_EQ(arena.bytes_used(), 64u * 64u);
  EXPECT_GE(arena.bytes_reserved(), 64u * 64u);
}

TEST(Arena, ResetRecyclesWithoutGrowingReservation) {
  Arena arena(/*first_block_bytes=*/256);
  auto fill = [&arena]() {
    for (int i = 0; i < 100; ++i) (void)arena.make_array<std::uint64_t>(32);
  };
  fill();
  const std::size_t reserved_after_first_pass = arena.bytes_reserved();
  EXPECT_GT(reserved_after_first_pass, 0u);

  // Identical passes after reset() must live entirely in the blocks the
  // first pass chained: the reservation stays flat (the allocation-free
  // steady state reused engine workspaces rely on).
  for (int pass = 0; pass < 5; ++pass) {
    arena.reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    fill();
    EXPECT_EQ(arena.bytes_reserved(), reserved_after_first_pass);
    EXPECT_EQ(arena.bytes_used(), 100u * 32u * sizeof(std::uint64_t));
  }
}

TEST(Arena, ResetOnEmptyArenaIsANoOp) {
  Arena arena;
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  int* p = arena.make<int>(7);
  EXPECT_EQ(*p, 7);
}

TEST(Arena, GrowSkipsRecycledBlocksThatAreTooSmall) {
  Arena arena(/*first_block_bytes=*/64);
  (void)arena.allocate(60, 8);   // lands in block 0
  (void)arena.allocate(150, 8);  // overflows block 0: chains a bigger one
  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  // A request bigger than block 0 must skip ahead to the big block (not
  // overrun block 0), and must not need any new storage.
  unsigned char* p = static_cast<unsigned char*>(arena.allocate(150, 8));
  std::memset(p, 0xAB, 150);
  EXPECT_EQ(p[149], 0xAB);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, MakeConstructsWithArguments) {
  Arena arena;
  struct Pair {
    int a;
    int b;
  };
  Pair* p = arena.make<Pair>(3, 4);
  EXPECT_EQ(p->a, 3);
  EXPECT_EQ(p->b, 4);
}

}  // namespace
}  // namespace vppb::util
