// Property-based tests: invariants that must hold across parameter
// sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P) and under randomized
// operation sequences checked against simple reference models.
#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <string>
#include <tuple>

#include "core/engine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "trace/io.hpp"
#include "ult/wait_queue.hpp"
#include "util/rng.hpp"
#include "workloads/prodcons.hpp"
#include "workloads/splash.hpp"
#include "workloads/synthetic.hpp"

namespace vppb {
namespace {

// ---------------------------------------------------------------------------
// WaitQueue vs a straightforward reference model, under random ops.

class WaitQueueModelTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(WaitQueueModelTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  ult::WaitQueue queue;
  // Reference: vector of (tid, prio, seq); pop = max prio, min seq.
  struct Entry {
    ult::ThreadId tid;
    int prio;
    std::uint64_t seq;
  };
  std::vector<Entry> model;
  std::uint64_t seq = 0;
  ult::ThreadId next_tid = 1;

  for (int step = 0; step < 500; ++step) {
    const auto action = rng.below(10);
    if (action < 5) {  // push
      const int prio = static_cast<int>(rng.below(4));
      queue.push(next_tid, prio);
      model.push_back(Entry{next_tid, prio, seq++});
      ++next_tid;
    } else if (action < 8) {  // pop
      const ult::ThreadId got = queue.pop();
      if (model.empty()) {
        EXPECT_EQ(got, ult::kNoThread);
      } else {
        auto best = model.begin();
        for (auto it = model.begin(); it != model.end(); ++it) {
          if (it->prio > best->prio ||
              (it->prio == best->prio && it->seq < best->seq))
            best = it;
        }
        EXPECT_EQ(got, best->tid) << "step " << step;
        model.erase(best);
      }
    } else if (action == 8 && !model.empty()) {  // remove random
      const auto victim = model.begin() +
                          static_cast<std::ptrdiff_t>(rng.below(model.size()));
      EXPECT_TRUE(queue.remove(victim->tid));
      model.erase(victim);
    } else if (!model.empty()) {  // update priority
      const auto target = model.begin() +
                          static_cast<std::ptrdiff_t>(rng.below(model.size()));
      const int prio = static_cast<int>(rng.below(4));
      EXPECT_TRUE(queue.update_priority(target->tid, prio));
      target->prio = prio;
    }
    ASSERT_EQ(queue.size(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaitQueueModelTest,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Engine invariants over a (workload x cpus x lwps) sweep.

struct EngineCase {
  std::string name;
  std::function<void()> body;
  int cpus;
  int lwps;
};

void PrintTo(const EngineCase& c, std::ostream* os) {
  *os << c.name << "/cpus" << c.cpus << "/lwps" << c.lwps;
}

class EngineInvariantTest : public testing::TestWithParam<EngineCase> {};

TEST_P(EngineInvariantTest, InvariantsHold) {
  const EngineCase& c = GetParam();
  sol::Program program;
  const trace::Trace t = rec::record_program(program, c.body);
  core::SimConfig cfg;
  cfg.hw.cpus = c.cpus;
  cfg.sched.lwps = c.lwps;
  const core::SimResult r = core::simulate(t, cfg);

  // 1. The timeline is well-formed (contiguous, <= cpus running, ...).
  r.validate();

  // 2. Speed-up is bounded by both CPUs and LWPs, and by thread count.
  const double bound = std::min<double>(
      c.cpus, c.lwps == 0 ? static_cast<double>(t.threads.size()) : c.lwps);
  EXPECT_LE(r.speedup, bound + 0.01);
  EXPECT_GT(r.speedup, 0.0);

  // 3. Work conservation: total CPU time equals the compiled demand and
  //    the per-CPU busy time.
  const core::CompiledTrace compiled = core::compile(t);
  SimTime demand;
  for (const auto& [tid, ct] : compiled.threads) demand += ct.total_cpu;
  SimTime thread_cpu;
  for (const auto& [tid, st] : r.threads) thread_cpu += st.cpu_time;
  SimTime busy;
  for (const auto& cs : r.cpu_stats) busy += cs.busy;
  EXPECT_EQ(thread_cpu, demand);
  EXPECT_EQ(busy, thread_cpu);

  // 4. Every event lands inside the run and keeps its source location.
  for (const auto& e : r.events) {
    EXPECT_LE(e.done, r.total);
    EXPECT_LT(e.loc, t.locations.size());
  }

  // 5. Each thread's lifetime covers its segments.
  for (const auto& [tid, st] : r.threads) {
    EXPECT_LE(st.created_at, st.exited_at);
    EXPECT_EQ(st.cpu_time + st.runnable_time + st.blocked_time +
                  st.sleeping_time,
              st.exited_at - st.created_at)
        << "T" << tid << " state times must tile its lifetime";
  }

  // 6. Determinism: simulating again gives the identical result.
  const core::SimResult r2 = core::simulate(t, cfg);
  EXPECT_EQ(r2.total, r.total);
  EXPECT_EQ(r2.segments.size(), r.segments.size());

  // 7. The LWP gantt is well-formed: per-LWP segments do not overlap,
  //    and the on-CPU time it shows equals the LWP's accounted running
  //    time.
  for (const core::LwpStats& ls : r.lwp_stats) {
    const auto segs = r.segments_of_lwp(ls.id);
    SimTime on_cpu;
    for (std::size_t i = 0; i < segs.size(); ++i) {
      EXPECT_LE(segs[i].start, segs[i].end);
      if (i > 0) {
        EXPECT_GE(segs[i].start, segs[i - 1].end);
      }
      if (segs[i].cpu >= 0) on_cpu += segs[i].end - segs[i].start;
    }
    EXPECT_EQ(on_cpu, ls.running) << "LWP " << ls.id;
  }
}

std::vector<EngineCase> engine_cases() {
  std::vector<EngineCase> cases;
  const auto add = [&cases](std::string name, std::function<void()> body) {
    for (int cpus : {1, 2, 3, 8}) {
      for (int lwps : {0, 2}) {
        cases.push_back(EngineCase{name, body, cpus, lwps});
      }
    }
  };
  add("forkjoin", []() { workloads::fork_join(5, SimTime::millis(7)); });
  add("imbalanced", []() {
    workloads::imbalanced(4, SimTime::millis(5), 0.8);
  });
  add("pipeline", []() { workloads::pipeline(3, 20, SimTime::micros(300)); });
  add("ocean", []() { workloads::ocean(workloads::SplashParams{3, 0.02}); });
  add("lu", []() { workloads::lu(workloads::SplashParams{3, 0.05}); });
  add("prodcons", []() {
    workloads::ProdConsParams p;
    p.producers = 10;
    p.consumers = 5;
    p.items_per_producer = 4;
    workloads::prodcons_tuned(p);
  });
  add("rwlock", []() {
    workloads::readers_writer(3, 5, SimTime::micros(500), 3,
                              SimTime::micros(800));
  });
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineInvariantTest,
                         testing::ValuesIn(engine_cases()),
                         [](const testing::TestParamInfo<EngineCase>& info) {
                           return info.param.name + "_cpus" +
                                  std::to_string(info.param.cpus) + "_lwps" +
                                  std::to_string(info.param.lwps);
                         });

// ---------------------------------------------------------------------------
// Trace serialization round-trips for every workload.

class TraceRoundTripTest
    : public testing::TestWithParam<std::function<void()>> {};

TEST_P(TraceRoundTripTest, TextRoundTripIsIdentity) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, GetParam());
  const std::string text = trace::to_text(t);
  const trace::Trace back = trace::from_text(text);
  EXPECT_EQ(trace::to_text(back), text);
  EXPECT_EQ(back.records.size(), t.records.size());
  // Round-tripped traces predict identically.
  EXPECT_EQ(core::simulate(back, core::SimConfig{}).total,
            core::simulate(t, core::SimConfig{}).total);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, TraceRoundTripTest,
    testing::Values(
        std::function<void()>(
            []() { workloads::fork_join(3, SimTime::millis(2)); }),
        std::function<void()>([]() {
          workloads::radix(workloads::SplashParams{2, 0.02});
        }),
        std::function<void()>([]() {
          workloads::water_spatial(workloads::SplashParams{3, 0.02});
        }),
        std::function<void()>([]() {
          workloads::pipeline(2, 10, SimTime::micros(100));
        })));

// ---------------------------------------------------------------------------
// Speed-up sanity across the CPU axis for every SPLASH app.

class SplashMonotonicTest
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SplashMonotonicTest, EfficiencyAtMostOne) {
  const auto [app_idx, cpus] = GetParam();
  const auto& app = workloads::splash_suite()[static_cast<std::size_t>(app_idx)];
  sol::Program program;
  const trace::Trace t = rec::record_program(program, [&app, cpus]() {
    app.run(workloads::SplashParams{cpus, 0.05});
  });
  const double s = core::predict_speedup(t, cpus);
  EXPECT_GT(s, 0.9) << app.name;
  EXPECT_LE(s, cpus * 1.001) << app.name << ": super-linear is impossible";
}

std::string splash_case_name(
    const testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* const kNames[5] = {"Ocean", "Water", "FFT", "Radix",
                                        "LU"};
  return std::string(kNames[std::get<0>(info.param)]) + "_cpus" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Grid, SplashMonotonicTest,
                         testing::Combine(testing::Range(0, 5),
                                          testing::Values(1, 2, 4, 8)),
                         splash_case_name);

}  // namespace
}  // namespace vppb
