// Unit tests for the user-level threads runtime (the one-LWP Solaris
// libthread substitute): fibers, scheduling order, clock charging,
// timers, deadlock/livelock detection.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ult/runtime.hpp"
#include "util/error.hpp"

namespace vppb::ult {
namespace {

TEST(WaitQueueTest, FifoWithinPriority) {
  WaitQueue q;
  q.push(10, 0);
  q.push(11, 0);
  q.push(12, 0);
  EXPECT_EQ(q.pop(), 10);
  EXPECT_EQ(q.pop(), 11);
  EXPECT_EQ(q.pop(), 12);
  EXPECT_EQ(q.pop(), kNoThread);
}

TEST(WaitQueueTest, PriorityBeatsArrival) {
  WaitQueue q;
  q.push(10, 0);
  q.push(11, 5);
  q.push(12, 5);
  EXPECT_EQ(q.pop(), 11);
  EXPECT_EQ(q.pop(), 12);
  EXPECT_EQ(q.pop(), 10);
}

TEST(WaitQueueTest, RemoveSpecific) {
  WaitQueue q;
  q.push(10, 0);
  q.push(11, 0);
  EXPECT_TRUE(q.remove(10));
  EXPECT_FALSE(q.remove(10));
  EXPECT_EQ(q.pop(), 11);
}

TEST(WaitQueueTest, SnapshotIsWakeOrder) {
  WaitQueue q;
  q.push(10, 0);
  q.push(11, 3);
  q.push(12, 0);
  const auto snap = q.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0], 11);
  EXPECT_EQ(snap[1], 10);
  EXPECT_EQ(snap[2], 12);
}

TEST(RuntimeTest, MainRunsToCompletion) {
  Runtime rt;
  bool ran = false;
  rt.run([&]() { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(RuntimeTest, SolarisStyleThreadIds) {
  Runtime rt;
  std::vector<ThreadId> ids;
  rt.run([&]() {
    ids.push_back(Runtime::current().current_tid());
    ids.push_back(Runtime::current().spawn([] {}));
    ids.push_back(Runtime::current().spawn([] {}));
  });
  // main = 1, then 4, 5 — ids 2 and 3 are reserved as in Solaris.
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], 1);
  EXPECT_EQ(ids[1], 4);
  EXPECT_EQ(ids[2], 5);
}

TEST(RuntimeTest, CooperativeNoPreemptionBetweenLibraryCalls) {
  // A spawned thread does not run until the spawner yields: on one LWP
  // context switches happen only at thread-library calls.
  Runtime rt;
  std::string order;
  rt.run([&]() {
    auto& r = Runtime::current();
    r.spawn([&order]() { order += 'b'; });
    order += 'a';
    r.yield();
    order += 'c';
  });
  EXPECT_EQ(order, "abc");
}

TEST(RuntimeTest, HigherPriorityRunsFirst) {
  Runtime rt;
  std::string order;
  rt.run([&]() {
    auto& r = Runtime::current();
    r.spawn([&order]() { order += 'l'; }, 1);
    r.spawn([&order]() { order += 'h'; }, 10);
    r.yield();  // main has priority 0 and re-queues behind both
  });
  EXPECT_EQ(order, "hl");
}

TEST(RuntimeTest, VirtualWorkAdvancesClockAndCpuTime) {
  Runtime rt;
  SimTime at_end;
  SimTime cpu;
  rt.run([&]() {
    auto& r = Runtime::current();
    r.work(SimTime::micros(100));
    r.work(SimTime::micros(50));
    at_end = r.now();
    cpu = r.cpu_time(r.current_tid());
  });
  EXPECT_EQ(at_end, SimTime::micros(150));
  EXPECT_EQ(cpu, SimTime::micros(150));
}

TEST(RuntimeTest, CpuTimeChargedPerThread) {
  Runtime rt;
  SimTime main_cpu, child_cpu;
  rt.run([&]() {
    auto& r = Runtime::current();
    const ThreadId child = r.spawn([&r]() { r.work(SimTime::micros(30)); });
    r.work(SimTime::micros(10));
    r.yield();  // let the child run
    main_cpu = r.cpu_time(r.current_tid());
    child_cpu = r.cpu_time(child);
  });
  EXPECT_EQ(main_cpu, SimTime::micros(10));
  EXPECT_EQ(child_cpu, SimTime::micros(30));
}

TEST(RuntimeTest, BlockAndWake) {
  Runtime rt;
  WaitQueue q;
  std::string order;
  rt.run([&]() {
    auto& r = Runtime::current();
    r.spawn([&]() {
      order += 'w';
      r.block_current(q);
      order += 'W';
    });
    r.yield();  // child runs, blocks
    order += 'm';
    r.wake_one(q);
    r.yield();  // child resumes
    order += 'M';
  });
  EXPECT_EQ(order, "wmWM");
}

TEST(RuntimeTest, SleepUntilAdvancesIdleClock) {
  Runtime rt;
  SimTime woke_at;
  rt.run([&]() {
    auto& r = Runtime::current();
    r.sleep_until(SimTime::millis(5));
    woke_at = r.now();
  });
  EXPECT_EQ(woke_at, SimTime::millis(5));
}

TEST(RuntimeTest, TimedBlockTimesOut) {
  Runtime rt;
  WaitQueue q;
  bool woken = true;
  SimTime at;
  rt.run([&]() {
    auto& r = Runtime::current();
    woken = r.block_current_until(q, SimTime::micros(250));
    at = r.now();
  });
  EXPECT_FALSE(woken);
  EXPECT_EQ(at, SimTime::micros(250));
  EXPECT_TRUE(q.empty()) << "timed-out sleeper must leave the queue";
}

TEST(RuntimeTest, TimedBlockWokenBeforeDeadline) {
  Runtime rt;
  WaitQueue q;
  bool woken = false;
  rt.run([&]() {
    auto& r = Runtime::current();
    r.spawn([&]() { woken = r.block_current_until(q, SimTime::seconds(9)); });
    r.yield();
    r.work(SimTime::micros(10));
    r.wake_one(q);
  });
  EXPECT_TRUE(woken);
}

TEST(RuntimeTest, DeadlockDetected) {
  Runtime rt;
  WaitQueue q;
  EXPECT_THROW(rt.run([&]() { Runtime::current().block_current(q); }),
               Error);
}

TEST(RuntimeTest, LivelockHorizonAborts) {
  Runtime::Config cfg;
  cfg.livelock_horizon = SimTime::millis(1);
  Runtime rt(cfg);
  // The paper's §6 spinning-thread limitation: a thread that computes
  // forever without blocking starves everyone; the horizon catches it.
  EXPECT_THROW(rt.run([]() {
                 auto& r = Runtime::current();
                 for (;;) r.work(SimTime::micros(100));
               }),
               Error);
}

TEST(RuntimeTest, ContextSwitchBoundAborts) {
  Runtime::Config cfg;
  cfg.max_context_switches = 100;
  Runtime rt(cfg);
  EXPECT_THROW(rt.run([]() {
                 auto& r = Runtime::current();
                 for (;;) r.yield();
               }),
               Error);
}

TEST(RuntimeTest, DaemonThreadDoesNotKeepProgramAlive) {
  Runtime rt;
  WaitQueue q;
  rt.run([&]() {
    auto& r = Runtime::current();
    r.spawn([&]() { r.block_current(q); }, kDefaultPriority, /*daemon=*/true);
    r.yield();
  });
  SUCCEED();  // run() returned even though the daemon is still blocked
}

TEST(RuntimeTest, ExitWaitersWokenOnExit) {
  Runtime rt;
  std::string order;
  rt.run([&]() {
    auto& r = Runtime::current();
    const ThreadId child = r.spawn([&]() { order += 'c'; });
    r.block_current(r.exit_waiters(child));
    order += 'm';
    EXPECT_EQ(r.state(child), ThreadState::kDone);
  });
  EXPECT_EQ(order, "cm");
}

TEST(RuntimeTest, SetPriorityRequeuesRunnableThread) {
  Runtime rt;
  std::string order;
  rt.run([&]() {
    auto& r = Runtime::current();
    const ThreadId a = r.spawn([&order]() { order += 'a'; });
    r.spawn([&order]() { order += 'b'; });
    r.set_priority(a, 0);  // same priority: 'a' keeps FIFO position
    r.yield();
    order += 'm';
    r.set_priority(r.current_tid(), 5);
    EXPECT_EQ(r.priority(r.current_tid()), 5);
  });
  EXPECT_EQ(order, "abm");
}

TEST(RuntimeTest, StateDumpListsThreads) {
  Runtime rt;
  std::string dump;
  rt.run([&]() {
    auto& r = Runtime::current();
    r.spawn([&r]() { r.yield(); }, 2, false, "worker");
    dump = r.state_dump();
  });
  EXPECT_NE(dump.find("T1 (main) running"), std::string::npos);
  EXPECT_NE(dump.find("(worker) runnable"), std::string::npos);
}

TEST(RuntimeTest, RealClockChargesElapsedTime) {
  Runtime::Config cfg;
  cfg.clock_mode = ClockMode::kReal;
  Runtime rt(cfg);
  SimTime cpu;
  rt.run([&]() {
    auto& r = Runtime::current();
    // Busy-spin ~2 ms of real time between library calls.
    const auto t0 = std::chrono::steady_clock::now();
    volatile double x = 1.0;
    while (std::chrono::steady_clock::now() - t0 <
           std::chrono::milliseconds(2))
      x = x * 1.0000001;
    r.stamp_now();
    cpu = r.cpu_time(r.current_tid());
  });
  EXPECT_GE(cpu, SimTime::millis(2));
  EXPECT_LT(cpu, SimTime::millis(500));
}

TEST(RuntimeTest, NestedRunRejected) {
  Runtime rt;
  rt.run([&]() {
    Runtime inner;
    EXPECT_THROW(inner.run([] {}), Error);
  });
}

TEST(RuntimeTest, ManyThreadsRoundRobin) {
  Runtime rt;
  int completed = 0;
  rt.run([&]() {
    auto& r = Runtime::current();
    for (int i = 0; i < 200; ++i) {
      r.spawn([&completed, &r]() {
        r.work(SimTime::micros(1));
        r.yield();
        r.work(SimTime::micros(1));
        ++completed;
      });
    }
  });
  EXPECT_EQ(completed, 200);
}

}  // namespace
}  // namespace vppb::ult
