// Tests for the vppbd prediction service: protocol framing (including
// truncated/oversized/garbage frames), the content-addressed LRU trace
// cache, the ThreadPool task API, and a multi-client integration test
// proving server responses bit-identical to the offline path.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <string>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/sweep.hpp"
#include "recorder/recorder.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/stats_text.hpp"
#include "server/trace_cache.hpp"
#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/socket.hpp"
#include "util/thread_pool.hpp"
#include "workloads/synthetic.hpp"

namespace vppb::server {
namespace {

// ---- helpers ---------------------------------------------------------------

trace::Trace record_fork_join(int threads, SimTime work) {
  sol::Program program;
  return rec::record_program(program, [threads, work]() {
    workloads::fork_join(threads, work);
  });
}

/// A fresh path under the system temp dir; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    static std::atomic<int> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("vppb_" + tag + "_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter.fetch_add(1))))
                .string();
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Request full_request() {
  Request req;
  req.type = ReqType::kSimulate;
  req.trace_path = "some/trace file.bin";
  req.cpus = 12;
  req.lwps = 3;
  req.max_cpus = 64;
  req.comm_delay_us = 7;
  req.want_svg = true;
  req.deadline_ms = 250;
  return req;
}

// ---- protocol framing ------------------------------------------------------

TEST(ProtocolTest, RequestRoundTrip) {
  const Request req = full_request();
  const Request back = decode_request(encode(req));
  EXPECT_EQ(back.type, req.type);
  EXPECT_EQ(back.trace_path, req.trace_path);
  EXPECT_EQ(back.cpus, req.cpus);
  EXPECT_EQ(back.lwps, req.lwps);
  EXPECT_EQ(back.max_cpus, req.max_cpus);
  EXPECT_EQ(back.comm_delay_us, req.comm_delay_us);
  EXPECT_EQ(back.want_svg, req.want_svg);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);
}

TEST(ProtocolTest, HealthAndDeadlineFieldsRoundTrip) {
  Response resp;
  resp.status = Status::kOk;
  resp.type = ReqType::kHealth;
  resp.ready = true;
  resp.in_flight = 3;
  resp.admission_limit = 64;
  resp.stats.deadlines = 7;
  resp.stats.by_type[static_cast<std::size_t>(ReqType::kHealth)] = 2;
  const Response back = decode_response(encode(resp));
  EXPECT_EQ(back.type, ReqType::kHealth);
  EXPECT_TRUE(back.ready);
  EXPECT_EQ(back.in_flight, 3u);
  EXPECT_EQ(back.admission_limit, 64u);
  EXPECT_EQ(back.stats.deadlines, 7u);
  EXPECT_EQ(back.stats.by_type[static_cast<std::size_t>(ReqType::kHealth)],
            2u);

  Response dl;
  dl.status = Status::kDeadlineExceeded;
  dl.type = ReqType::kPredict;
  dl.error = "deadline exceeded during CPU sweep";
  const Response dlback = decode_response(encode(dl));
  EXPECT_EQ(dlback.status, Status::kDeadlineExceeded);
  EXPECT_EQ(dlback.error, dl.error);
}

TEST(ProtocolTest, ResponseRoundTrip) {
  Response resp;
  resp.status = Status::kOk;
  resp.type = ReqType::kPredict;
  resp.points = {WirePoint{1, 1.0, 1.0, 1000, 11},
                 WirePoint{4, 3.5, 0.875, 286, 22}};
  resp.serial_fraction = 0.0625;
  resp.knee = 4;
  resp.digest = 0xdeadbeefcafef00dULL;
  resp.total_ns = 286;
  resp.speedup = 3.5;
  resp.cpus = 4;
  resp.lwps = 9;
  resp.events = 123;
  resp.svg = "<svg>...</svg>";
  resp.report = "all quiet";
  resp.stats.requests = 42;
  resp.stats.by_type[0] = 40;
  resp.stats.cache_hits = 39;
  resp.stats.p99_us = 1234.5;

  const Response back = decode_response(encode(resp));
  EXPECT_EQ(back.status, resp.status);
  EXPECT_EQ(back.type, resp.type);
  ASSERT_EQ(back.points.size(), 2u);
  EXPECT_EQ(back.points[1].cpus, 4);
  EXPECT_DOUBLE_EQ(back.points[1].speedup, 3.5);
  EXPECT_EQ(back.points[1].digest, 22u);
  EXPECT_DOUBLE_EQ(back.serial_fraction, 0.0625);
  EXPECT_EQ(back.knee, 4);
  EXPECT_EQ(back.digest, resp.digest);
  EXPECT_EQ(back.total_ns, 286);
  EXPECT_EQ(back.lwps, 9);
  EXPECT_EQ(back.events, 123u);
  EXPECT_EQ(back.svg, resp.svg);
  EXPECT_EQ(back.report, resp.report);
  EXPECT_EQ(back.stats.requests, 42u);
  EXPECT_EQ(back.stats.by_type[0], 40u);
  EXPECT_EQ(back.stats.cache_hits, 39u);
  EXPECT_DOUBLE_EQ(back.stats.p99_us, 1234.5);
}

TEST(ProtocolTest, ErrorResponseRoundTrip) {
  Response resp;
  resp.status = Status::kOverloaded;
  resp.type = ReqType::kAnalyze;
  resp.error = "server overloaded";
  const Response back = decode_response(encode(resp));
  EXPECT_EQ(back.status, Status::kOverloaded);
  EXPECT_EQ(back.error, "server overloaded");
}

TEST(ProtocolTest, FrameRoundTripOverSocketPair) {
  auto [a, b] = util::socket_pair();
  const std::vector<std::uint8_t> payload = encode(full_request());
  write_frame(a, payload);
  write_frame(a, payload);  // two frames back to back
  std::vector<std::uint8_t> got;
  ASSERT_TRUE(read_frame(b, got));
  EXPECT_EQ(got, payload);
  ASSERT_TRUE(read_frame(b, got));
  EXPECT_EQ(got, payload);
}

TEST(ProtocolTest, CleanEofReturnsFalse) {
  auto [a, b] = util::socket_pair();
  a.close();
  std::vector<std::uint8_t> got;
  EXPECT_FALSE(read_frame(b, got));
}

TEST(ProtocolTest, TruncatedHeaderThrows) {
  auto [a, b] = util::socket_pair();
  const std::uint8_t half[2] = {0x10, 0x00};
  a.send_all(half, sizeof half);
  a.close();
  std::vector<std::uint8_t> got;
  EXPECT_THROW(read_frame(b, got), Error);
}

TEST(ProtocolTest, TruncatedPayloadThrows) {
  auto [a, b] = util::socket_pair();
  const std::uint8_t header[4] = {100, 0, 0, 0};  // promises 100 bytes
  a.send_all(header, sizeof header);
  const std::uint8_t some[10] = {};
  a.send_all(some, sizeof some);
  a.close();
  std::vector<std::uint8_t> got;
  EXPECT_THROW(read_frame(b, got), Error);
}

TEST(ProtocolTest, OversizedFrameThrows) {
  auto [a, b] = util::socket_pair();
  const std::uint8_t header[4] = {0xff, 0xff, 0xff, 0xff};
  a.send_all(header, sizeof header);
  std::vector<std::uint8_t> got;
  EXPECT_THROW(read_frame(b, got), Error);
}

TEST(ProtocolTest, ZeroLengthFrameThrows) {
  auto [a, b] = util::socket_pair();
  const std::uint8_t header[4] = {0, 0, 0, 0};
  a.send_all(header, sizeof header);
  std::vector<std::uint8_t> got;
  EXPECT_THROW(read_frame(b, got), Error);
}

TEST(ProtocolTest, GarbagePayloadThrows) {
  // A correctly framed payload of junk must fail decoding, not crash.
  const std::vector<std::uint8_t> junk = {0x01, 0xff, 0xee, 0xdd, 0x9c,
                                          0x80, 0x80, 0x80, 0x42};
  EXPECT_THROW(decode_request(junk), Error);
  EXPECT_THROW(decode_response(junk), Error);
}

TEST(ProtocolTest, WrongVersionThrows) {
  std::vector<std::uint8_t> payload = encode(full_request());
  payload[0] = kProtocolVersion + 1;
  EXPECT_THROW(decode_request(payload), Error);
}

TEST(ProtocolTest, TrailingBytesThrow) {
  std::vector<std::uint8_t> payload = encode(full_request());
  payload.push_back(0x00);
  EXPECT_THROW(decode_request(payload), Error);
}

// ---- combined digests ------------------------------------------------------

TEST(DigestTest, CombinedDigestIsOrderSensitive) {
  const trace::Trace t = record_fork_join(4, SimTime::millis(2));
  const core::CompiledTrace compiled = core::compile(t);
  core::SimConfig cfg;
  cfg.hw.cpus = 1;
  const core::SimResult one = core::simulate(compiled, cfg);
  cfg.hw.cpus = 4;
  const core::SimResult four = core::simulate(compiled, cfg);
  ASSERT_NE(core::digest(one), core::digest(four));
  EXPECT_NE(core::digest(std::vector<core::SimResult>{one, four}),
            core::digest(std::vector<core::SimResult>{four, one}));
  EXPECT_NE(core::digest(std::vector<core::SimResult>{one}),
            core::digest(std::vector<core::SimResult>{}));
}

// ---- ThreadPool::post ------------------------------------------------------

TEST(ThreadPoolPostTest, RunsAllTasksAndDrainsOnDestruction) {
  std::atomic<int> ran{0};
  {
    util::ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) pool.post([&ran]() { ++ran; });
  }  // destructor must drain, not drop
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolPostTest, RunsInlineWithoutWorkers) {
  util::ThreadPool pool(1);
  bool ran = false;
  pool.post([&ran]() { ran = true; });
  EXPECT_TRUE(ran);  // synchronous when the pool has no workers
}

TEST(ThreadPoolPostTest, CoexistsWithParallelFor) {
  util::ThreadPool pool(4);
  std::atomic<int> posted{0};
  for (int i = 0; i < 32; ++i) pool.post([&posted]() { ++posted; });
  std::atomic<int> looped{0};
  pool.parallel_for(64, [&looped](std::size_t) { ++looped; });
  EXPECT_EQ(looped.load(), 64);
  // parallel_for returning does not imply the queue is empty; the
  // destructor drains what remains.
}

// ---- trace cache -----------------------------------------------------------

TEST(TraceCacheTest, HitsMissesContentAddressingAndLru) {
  const trace::Trace t1 = record_fork_join(2, SimTime::millis(1));
  const trace::Trace t2 = record_fork_join(3, SimTime::millis(1));
  const trace::Trace t3 = record_fork_join(4, SimTime::millis(1));
  TempFile f1("t1"), f1copy("t1copy"), f2("t2"), f3("t3");
  trace::save_file(t1, f1.path());
  trace::save_file(t1, f1copy.path());  // same bytes, different path
  trace::save_file(t2, f2.path());
  trace::save_file(t3, f3.path());

  TraceCache cache(2, 1u << 30);
  const auto e1 = cache.get(f1.path());
  EXPECT_EQ(cache.stats().misses, 1u);

  // Content addressing: a byte-identical file elsewhere is a hit.
  const auto e1b = cache.get(f1copy.path());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(e1.get(), e1b.get());

  cache.get(f2.path());
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Third distinct trace in a 2-entry cache evicts the LRU one (t1).
  cache.get(f3.path());
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.get(f1.path());  // must re-load
  EXPECT_EQ(cache.stats().misses, 4u);

  // The evicted entry stayed alive through its shared_ptr.
  EXPECT_EQ(e1->trace.records.size(), t1.records.size());
}

TEST(TraceCacheTest, ByteBudgetEvicts) {
  const trace::Trace t1 = record_fork_join(2, SimTime::millis(1));
  const trace::Trace t2 = record_fork_join(5, SimTime::millis(1));
  TempFile f1("b1"), f2("b2");
  trace::save_file(t1, f1.path());
  trace::save_file(t2, f2.path());

  // Entries are charged their full parsed+compiled footprint, not just
  // file bytes, so measure the charge with an unbounded cache first.
  std::size_t size1 = 0;
  std::size_t size2 = 0;
  {
    TraceCache probe(16, 1u << 30);
    size1 = probe.get(f1.path())->bytes;
    size2 = probe.get(f2.path())->bytes;
  }

  // Budget fits either trace alone but not both.
  TraceCache cache(16, size1 + size2 - 1);
  cache.get(f1.path());
  EXPECT_EQ(cache.stats().entries, 1u);
  cache.get(f2.path());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_LE(cache.stats().bytes, size1 + size2 - 1);
}

TEST(TraceCacheTest, MissingAndMalformedFilesThrow) {
  TraceCache cache(4, 1u << 20);
  EXPECT_THROW(cache.get("/nonexistent/vppb.trace"), Error);
  TempFile junk("junk");
  std::ofstream(junk.path()) << "this is not a trace\n";
  EXPECT_THROW(cache.get(junk.path()), Error);
  // A failed load must not wedge the slot for later attempts.
  EXPECT_THROW(cache.get(junk.path()), Error);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(TraceCacheTest, ConcurrentColdGetsCompileOnce) {
  const trace::Trace t = record_fork_join(4, SimTime::millis(2));
  TempFile f("cold");
  trace::save_file(t, f.path());
  TraceCache cache(4, 1u << 30);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const TraceCache::Entry>> entries(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&cache, &entries, &f, i]() {
      entries[static_cast<std::size_t>(i)] = cache.get(f.path());
    });
  }
  for (auto& th : threads) th.join();
  const TraceCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1u) << "single-flight must compile exactly once";
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads - 1));
  for (const auto& e : entries) EXPECT_EQ(e.get(), entries[0].get());
}

// ---- server integration ----------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  static Request predict_request(const std::string& path, int max_cpus = 8) {
    Request req;
    req.type = ReqType::kPredict;
    req.trace_path = path;
    req.max_cpus = max_cpus;
    return req;
  }
};

TEST_F(ServerTest, EightClientsBitIdenticalToOfflineAndOneCompile) {
  const trace::Trace t = record_fork_join(6, SimTime::millis(3));
  TempFile trace_file("srv");
  trace::save_file(t, trace_file.path());

  // The offline path: same sweep, same digests.
  const core::CompiledTrace compiled = core::compile(t);
  std::vector<core::SimResult> offline_results;
  core::SweepOptions opt;
  opt.jobs = 1;
  opt.results = &offline_results;
  const std::vector<int> counts = {1, 2, 4, 8};
  core::sweep_cpus(compiled, counts, core::SimConfig{}, opt);
  const std::uint64_t offline_digest = core::digest(offline_results);

  TempFile sock("sock");
  ServerOptions so;
  so.unix_path = sock.path();
  so.jobs = 4;
  Server server(so);
  server.start();

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<Response> responses(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i]() {
      Client c = Client::connect_unix(sock.path());
      responses[static_cast<std::size_t>(i)] =
          c.call(predict_request(trace_file.path()));
    });
  }
  for (auto& th : clients) th.join();

  for (const Response& r : responses) {
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_EQ(r.digest, offline_digest)
        << "server response must be bit-identical to offline predict";
    ASSERT_EQ(r.points.size(), offline_results.size());
    for (std::size_t i = 0; i < r.points.size(); ++i) {
      EXPECT_EQ(r.points[i].digest, core::digest(offline_results[i]));
      EXPECT_EQ(r.points[i].total_ns, offline_results[i].total.ns());
    }
  }

  Client c = Client::connect_unix(sock.path());
  Request stats_req;
  stats_req.type = ReqType::kStats;
  const Response stats = c.call(stats_req);
  ASSERT_EQ(stats.status, Status::kOk);
  EXPECT_EQ(stats.stats.by_type[0], static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.stats.cache_misses, 1u)
      << "the trace must be parsed/compiled exactly once";
  EXPECT_EQ(stats.stats.cache_hits, static_cast<std::uint64_t>(kClients - 1));
  EXPECT_EQ(stats.stats.overloads, 0u);
  // The stats request's own latency is recorded after its snapshot.
  EXPECT_EQ(stats.stats.latency_count, static_cast<std::uint64_t>(kClients));
  server.stop();
}

TEST_F(ServerTest, MetricsDumpServesPrometheusTextAndStructuredStats) {
  const trace::Trace t = record_fork_join(4, SimTime::millis(2));
  TempFile trace_file("md");
  trace::save_file(t, trace_file.path());

  TempFile sock("mdsock");
  ServerOptions so;
  so.unix_path = sock.path();
  so.jobs = 2;
  Server server(so);
  server.start();

  Client c = Client::connect_unix(sock.path());
  // Two predicts so the cache records one miss and one hit.
  ASSERT_EQ(c.call(predict_request(trace_file.path(), 4)).status, Status::kOk);
  ASSERT_EQ(c.call(predict_request(trace_file.path(), 4)).status, Status::kOk);

  Request req;
  req.type = ReqType::kMetricsDump;
  const Response r = c.call(req);
  ASSERT_EQ(r.status, Status::kOk) << r.error;
  EXPECT_EQ(r.type, ReqType::kMetricsDump);

  // The Prometheus exposition covers every layer: server counters and
  // latency histogram, cache counters and occupancy gauges, pool usage.
  for (const char* needle :
       {"# TYPE vppb_server_requests_total counter",
        "# TYPE vppb_server_latency_us histogram", "vppb_cache_hits_total",
        "vppb_cache_misses_total", "vppb_cache_entries", "vppb_cache_bytes",
        "vppb_pool_tasks_total", "vppb_pool_queue_depth",
        "vppb_server_in_flight", "vppb_server_admission_limit"}) {
    EXPECT_NE(r.report.find(needle), std::string::npos)
        << "metricsdump missing " << needle;
  }

  // The structured body rides along, and its human rendering surfaces
  // the failure counters and the hit rate.
  EXPECT_GE(r.stats.requests, 3u);
  EXPECT_EQ(r.stats.cache_misses, 1u);
  EXPECT_EQ(r.stats.cache_hits, 1u);
  const std::string text = render_stats_text(r.stats);
  EXPECT_NE(text.find("deadline misses"), std::string::npos);
  EXPECT_NE(text.find("overloads"), std::string::npos);
  EXPECT_NE(text.find("cache hit rate: 50.0%"), std::string::npos);
  server.stop();
}

TEST_F(ServerTest, SimulateDigestMatchesOfflineAndSvgRenders) {
  const trace::Trace t = record_fork_join(4, SimTime::millis(2));
  TempFile trace_file("sim");
  trace::save_file(t, trace_file.path());
  core::SimConfig cfg;
  cfg.hw.cpus = 2;
  const std::uint64_t offline = core::digest(core::simulate(t, cfg));

  TempFile sock("simsock");
  ServerOptions so;
  so.unix_path = sock.path();
  so.jobs = 2;
  Server server(so);
  server.start();

  Client c = Client::connect_unix(sock.path());
  Request req;
  req.type = ReqType::kSimulate;
  req.trace_path = trace_file.path();
  req.cpus = 2;
  req.want_svg = true;
  const Response r = c.call(req);
  ASSERT_EQ(r.status, Status::kOk) << r.error;
  EXPECT_EQ(r.digest, offline);
  EXPECT_NE(r.svg.find("<svg"), std::string::npos);

  // One connection, several request types back to back.
  req.type = ReqType::kAnalyze;
  req.want_svg = false;
  const Response a = c.call(req);
  ASSERT_EQ(a.status, Status::kOk) << a.error;
  EXPECT_FALSE(a.report.empty());
  server.stop();
}

TEST_F(ServerTest, BadRequestsGetErrorResponsesNotDrops) {
  TempFile sock("errsock");
  ServerOptions so;
  so.unix_path = sock.path();
  so.jobs = 2;
  Server server(so);
  server.start();

  Client c = Client::connect_unix(sock.path());
  Request req = predict_request("/does/not/exist.trace");
  const Response r = c.call(req);
  EXPECT_EQ(r.status, Status::kError);
  EXPECT_NE(r.error.find("cannot open trace file"), std::string::npos);
  EXPECT_NE(r.error.find("No such file"), std::string::npos)
      << "the error must carry strerror(errno) context: " << r.error;

  // Out-of-range config on the same connection still answers.
  req.max_cpus = -3;
  const Response r2 = c.call(req);
  EXPECT_EQ(r2.status, Status::kError);
  EXPECT_NE(r2.error.find("out of range"), std::string::npos);
  server.stop();
}

TEST_F(ServerTest, OverloadIsExplicitAndBounded) {
  // One pool worker, blocked: admitted requests queue, and anything
  // beyond the admission limit must be rejected immediately — not
  // queued forever.
  util::ThreadPool pool(2);  // 1 worker + callers
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  pool.post([&]() {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&]() { return gate_open; });
  });

  TempFile sock("oversock");
  ServerOptions so;
  so.unix_path = sock.path();
  so.pool = &pool;
  so.admission_limit = 2;
  Server server(so);
  server.start();

  constexpr int kClients = 6;
  std::atomic<int> ok{0}, overloaded{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&]() {
      Client c = Client::connect_unix(sock.path());
      Request req;
      req.type = ReqType::kStats;
      const Response r = c.call(req);
      if (r.status == Status::kOk) ++ok;
      if (r.status == Status::kOverloaded) ++overloaded;
    });
  }

  // With the worker blocked nothing can finish, so exactly
  // admission_limit requests are admitted and the rest must come back
  // overloaded while we wait.
  for (int spins = 0; overloaded.load() < kClients - so.admission_limit &&
                      spins < 500; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(overloaded.load(), kClients - so.admission_limit);
  EXPECT_EQ(ok.load(), 0);

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  for (auto& th : clients) th.join();
  EXPECT_EQ(ok.load(), so.admission_limit);
  EXPECT_EQ(overloaded.load(), kClients - so.admission_limit);

  Client c = Client::connect_unix(sock.path());
  Request req;
  req.type = ReqType::kStats;
  const Response stats = c.call(req);
  EXPECT_EQ(stats.stats.overloads,
            static_cast<std::uint64_t>(kClients - so.admission_limit));
  server.stop();
}

TEST_F(ServerTest, TcpEndpointWorksToo) {
  const trace::Trace t = record_fork_join(3, SimTime::millis(1));
  TempFile trace_file("tcp");
  trace::save_file(t, trace_file.path());

  ServerOptions so;
  so.tcp_port = 0;  // ephemeral
  so.jobs = 2;
  Server server(so);
  server.start();
  ASSERT_GT(server.tcp_port(), 0);

  Client c = Client::connect_tcp(server.tcp_port());
  const Response r = c.call(predict_request(trace_file.path(), 4));
  ASSERT_EQ(r.status, Status::kOk) << r.error;
  EXPECT_EQ(r.points.size(), 3u);  // 1, 2, 4
  server.stop();
}

TEST_F(ServerTest, StopDrainsInFlightRequests) {
  const trace::Trace t = record_fork_join(4, SimTime::millis(2));
  TempFile trace_file("drain");
  trace::save_file(t, trace_file.path());
  TempFile sock("drainsock");
  ServerOptions so;
  so.unix_path = sock.path();
  so.jobs = 2;
  auto server = std::make_unique<Server>(so);
  server->start();

  // Fire a request and stop the server while it is being executed; the
  // response must still arrive (drain, not abort).  The caller runs in
  // its own thread, and stop() is issued only once the request counter
  // ticks — i.e. the connection thread is inside execute() and will
  // write its response before noticing the read-side shutdown.  Calling
  // stop() earlier would race the *accept* of the connection, which the
  // drain contract deliberately does not cover.
  Client c = Client::connect_unix(sock.path());
  Response r;
  std::string call_error;
  std::thread caller([&]() {
    try {
      r = c.call(predict_request(trace_file.path(), 4));
    } catch (const Error& e) {
      call_error = e.what();
    }
  });
  StatsBody stats;
  do {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    server->metrics().snapshot(stats);
  } while (stats.requests == 0);
  server->stop();
  caller.join();
  ASSERT_TRUE(call_error.empty()) << call_error;
  EXPECT_EQ(r.status, Status::kOk) << r.error;
}

// ---- resilience: deadlines, health, retries, fault injection ---------------

TEST_F(ServerTest, DeadlineExceededIsTypedCountedAndNeverRetried) {
  const trace::Trace t = record_fork_join(3, SimTime::millis(1));
  TempFile trace_file("dl");
  trace::save_file(t, trace_file.path());

  // One blocked pool worker: the request sits in the queue well past its
  // tiny deadline, so the queue-wait checkpoint must fire.
  util::ThreadPool pool(2);
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  pool.post([&]() {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&]() { return gate_open; });
  });

  TempFile sock("dlsock");
  ServerOptions so;
  so.unix_path = sock.path();
  so.pool = &pool;
  Server server(so);
  server.start();

  std::thread opener([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    {
      std::lock_guard<std::mutex> lock(gate_mu);
      gate_open = true;
    }
    gate_cv.notify_all();
  });

  Client c = Client::connect_unix(sock.path());
  Request req = predict_request(trace_file.path(), 4);
  req.deadline_ms = 5;
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_ms = 1;
  const Response r = c.call_retry(req, policy);
  opener.join();
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  EXPECT_NE(r.error.find("deadline"), std::string::npos) << r.error;
  // The budget is spent: a missed deadline is definitive, never retried.
  EXPECT_EQ(policy.slept_ms, 0);

  Request stats_req;
  stats_req.type = ReqType::kStats;
  const Response stats = c.call(stats_req);
  ASSERT_EQ(stats.status, Status::kOk);
  EXPECT_GE(stats.stats.deadlines, 1u);
  server.stop();
}

TEST_F(ServerTest, HealthBypassesAdmissionDuringOverload) {
  // Saturate a 1-slot server with a blocked worker, then prove a
  // readiness probe still answers — "busy but alive" must be
  // distinguishable from "dead" without consuming an admission slot.
  util::ThreadPool pool(2);
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  pool.post([&]() {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&]() { return gate_open; });
  });

  TempFile sock("healthsock");
  ServerOptions so;
  so.unix_path = sock.path();
  so.pool = &pool;
  so.admission_limit = 1;
  Server server(so);
  server.start();

  std::thread blocked_client([&]() {
    Client c = Client::connect_unix(sock.path());
    Request req;
    req.type = ReqType::kStats;
    const Response r = c.call(req);
    EXPECT_EQ(r.status, Status::kOk) << r.error;
  });

  // Wait (via health itself) until the stats request occupies the slot.
  Client c = Client::connect_unix(sock.path());
  Request health;
  health.type = ReqType::kHealth;
  Response h;
  for (int spins = 0; spins < 500; ++spins) {
    h = c.call(health);
    ASSERT_EQ(h.status, Status::kOk) << h.error;
    if (h.in_flight >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(h.ready);
  EXPECT_EQ(h.in_flight, 1u);
  EXPECT_EQ(h.admission_limit, 1u);

  // Admission is genuinely full: a second stats request is rejected
  // while health keeps answering on the same connection.
  Request stats_req;
  stats_req.type = ReqType::kStats;
  EXPECT_EQ(c.call(stats_req).status, Status::kOverloaded);
  EXPECT_EQ(c.call(health).status, Status::kOk);

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  blocked_client.join();
  server.stop();
}

TEST_F(ServerTest, ClientRetryRidesOutTransientOverload) {
  util::ThreadPool pool(2);
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  pool.post([&]() {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&]() { return gate_open; });
  });

  TempFile sock("retrysock");
  ServerOptions so;
  so.unix_path = sock.path();
  so.pool = &pool;
  so.admission_limit = 1;
  Server server(so);
  server.start();

  std::thread occupant([&]() {
    Client c = Client::connect_unix(sock.path());
    Request req;
    req.type = ReqType::kStats;
    c.call(req);
  });

  Client probe = Client::connect_unix(sock.path());
  Request health;
  health.type = ReqType::kHealth;
  for (int spins = 0; spins < 500; ++spins) {
    if (probe.call(health).in_flight >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // The overload is transient: the gate opens while the retrying client
  // is backing off, so call_retry must land a kOk without the caller
  // ever seeing kOverloaded.
  std::thread opener([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    {
      std::lock_guard<std::mutex> lock(gate_mu);
      gate_open = true;
    }
    gate_cv.notify_all();
  });

  Client c = Client::connect_unix(sock.path());
  Request req;
  req.type = ReqType::kStats;
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.base_ms = 10;
  policy.cap_ms = 40;
  policy.seed = 7;
  const Response r = c.call_retry(req, policy);
  opener.join();
  occupant.join();
  EXPECT_EQ(r.status, Status::kOk) << r.error;
  EXPECT_GT(policy.slept_ms, 0) << "the first attempts must have backed off";
  server.stop();
}

TEST_F(ServerTest, FaultInjectedClientsGetTypedErrorsAndCleanDigests) {
  const trace::Trace t = record_fork_join(4, SimTime::millis(2));
  TempFile trace_file("faultstorm_with_a_long_name_so_flips_hit_the_path");
  trace::save_file(t, trace_file.path());

  // The offline truth the surviving responses must match bit for bit.
  const core::CompiledTrace compiled = core::compile(t);
  std::vector<core::SimResult> offline_results;
  core::SweepOptions sweep_opt;
  sweep_opt.jobs = 1;
  sweep_opt.results = &offline_results;
  const std::vector<int> counts = {1, 2, 4, 8};
  core::sweep_cpus(compiled, counts, core::SimConfig{}, sweep_opt);
  const std::uint64_t offline_digest = core::digest(offline_results);

  // Every failure mode the plan covers: corrupted request frames,
  // connections dropped mid-stream, stalled responses, and cache loads
  // dying with ENOMEM/EIO.  Deterministic periods, so this is a proof.
  util::FaultPlan plan = util::FaultPlan::parse(
      "corrupt-frame:5,short-read:7:2,delay-ms:9:2:10,"
      "cache-enomem:6:1,cache-eio:11:1");

  TempFile sock("faultsock");
  ServerOptions so;
  so.unix_path = sock.path();
  so.jobs = 4;
  so.faults = &plan;
  Server server(so);
  server.start();

  constexpr int kClients = 8;
  constexpr int kCallsEach = 4;
  std::atomic<int> ok{0}, typed_errors{0}, transport_failures{0};
  std::atomic<int> wrong_digests{0}, untyped_errors{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i]() {
      Client c = Client::connect_unix(sock.path());
      for (int call = 0; call < kCallsEach; ++call) {
        RetryPolicy policy;
        policy.max_attempts = 4;
        policy.base_ms = 1;
        policy.cap_ms = 20;
        policy.seed = static_cast<std::uint64_t>(i * 100 + call + 1);
        policy.request_timeout_ms = 5000;
        try {
          const Response r =
              c.call_retry(predict_request(trace_file.path()), policy);
          if (r.status == Status::kOk) {
            ++ok;
            if (r.digest != offline_digest) ++wrong_digests;
          } else {
            ++typed_errors;
            if (r.error.empty()) ++untyped_errors;
          }
        } catch (const Error&) {
          ++transport_failures;  // every retry burned; still no crash
        }
      }
    });
  }
  for (auto& th : clients) th.join();

  EXPECT_GT(plan.fired_total(), 0u) << "the plan must actually have fired";
  EXPECT_GE(ok.load(), kClients) << "most requests must survive the storm";
  EXPECT_EQ(wrong_digests.load(), 0)
      << "a fault must never silently corrupt a successful result";
  EXPECT_EQ(untyped_errors.load(), 0)
      << "every failed request must carry a typed error message";

  // The daemon survived: a readiness probe answers (allowing for the
  // still-armed corrupt-frame rule eating some probe frames).
  Client probe = Client::connect_unix(sock.path());
  Request health;
  health.type = ReqType::kHealth;
  bool healthy = false;
  for (int attempt = 0; attempt < 6 && !healthy; ++attempt) {
    try {
      const Response h = probe.call(health);
      healthy = h.status == Status::kOk && h.ready;
    } catch (const Error&) {
      probe = Client::connect_unix(sock.path());
    }
  }
  EXPECT_TRUE(healthy) << "the daemon must still answer after the storm";
  server.stop();
}

}  // namespace
}  // namespace vppb::server
