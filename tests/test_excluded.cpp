// The paper's §4 exclusions, demonstrated against this implementation:
// spin-synchronized programs livelock the one-LWP recorder; task-stealing
// programs record but with the degenerate distribution the paper calls
// out ("only one thread steals all tasks").
#include <gtest/gtest.h>

#include <numeric>

#include "core/engine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "util/error.hpp"
#include "workloads/excluded.hpp"

namespace vppb::workloads {
namespace {

TEST(Excluded, SpinBarrierLivelocksTheRecorder) {
  // Barnes/Radiosity/Cholesky/FMM "could not run in one single LWP as
  // required by the Recorder" — the spinner never yields, the publisher
  // never runs, and the livelock horizon fires.
  sol::Program::Options opts;
  opts.livelock_horizon = SimTime::seconds(1.0);
  sol::Program program(opts);
  try {
    program.run([]() { spin_barrier_program(4, SimTime::millis(1)); });
    FAIL() << "the spin barrier must livelock on one LWP";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("livelock"), std::string::npos);
  }
}

TEST(Excluded, TaskStealingDegeneratesToOneThread) {
  // Raytrace/Volrend: "the impact of using one LWP gives the result that
  // only one thread steals all tasks, since it never yields the CPU".
  sol::Program program;
  std::vector<int> executed;
  program.run([&executed]() {
    executed = task_stealing_program(4, 100, SimTime::micros(200));
  });
  ASSERT_EQ(executed.size(), 4u);
  EXPECT_EQ(std::accumulate(executed.begin(), executed.end(), 0), 100);
  EXPECT_EQ(*std::max_element(executed.begin(), executed.end()), 100)
      << "one worker must have taken everything on one LWP";
}

TEST(Excluded, StolenWorkDistributionFreezesIntoThePrediction) {
  // Consequence: the predicted speed-up of a task-stealing program is
  // ~1 regardless of CPUs, because the trace has all work on one
  // thread.  This is why the paper excludes these programs rather than
  // reporting wrong numbers for them.
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {
    (void)task_stealing_program(4, 50, SimTime::micros(200));
  });
  const double s = core::predict_speedup(t, 8);
  EXPECT_LT(s, 1.2) << "the frozen distribution cannot parallelize";
}

TEST(Excluded, StealingBalancesWhenWorkersBlock) {
  // Control case: if the tasks contain an operation that yields the LWP
  // (the I/O extension), the distribution spreads and prediction
  // becomes meaningful again — the fix the exclusion hints at.
  sol::Program program;
  std::vector<int> executed;
  program.run([&executed]() {
    struct Shared {
      sol::Mutex lock;
      int remaining = 60;
      std::vector<int> executed = std::vector<int>(4, 0);
    };
    auto shared = std::make_shared<Shared>();
    for (int me = 0; me < 4; ++me) {
      sol::thr_create_fn(
          [shared, me]() -> void* {
            for (;;) {
              {
                sol::ScopedLock guard(shared->lock);
                if (shared->remaining == 0) return nullptr;
                --shared->remaining;
                ++shared->executed[static_cast<std::size_t>(me)];
              }
              sol::io_wait(SimTime::micros(500), "disk");  // yields the LWP
            }
          },
          0, nullptr, "blocking_stealer");
    }
    sol::join_all();
    executed = shared->executed;
  });
  int active_workers = 0;
  for (int n : executed) {
    if (n > 0) ++active_workers;
  }
  EXPECT_GE(active_workers, 3) << "blocking tasks spread across workers";
}

}  // namespace
}  // namespace vppb::workloads
