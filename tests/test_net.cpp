// Hostile-network hardening tests (protocol v8): the HMAC-SHA256
// primitives, the challenge–response handshake (accept, reject, replay,
// truncation, downgrade refusal), bounded socket operations (connect
// deadlines, send timeouts, total-frame deadlines, partial writes under
// a tiny SO_SNDBUF), the server's idle-reap and frame-ceiling defenses,
// the membership pool's bound + idle reaper, and the netem relay's
// fault schedules.  `ctest -L net` runs this suite; it is tsan-clean —
// every cross-thread handoff goes through sockets or joins.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "cluster/membership.hpp"
#include "server/auth.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "util/error.hpp"
#include "util/hmac.hpp"
#include "util/netem.hpp"
#include "util/socket.hpp"

namespace vppb::server {
namespace {

using util::NetemOptions;
using util::NetemRelay;
using util::Socket;
using util::SocketTimeout;

/// A fresh path under the system temp dir; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    static std::atomic<int> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("vppb_net_" + tag + "_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter.fetch_add(1))))
                .string();
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

StatsBody fetch_stats(Client& c) {
  Request req;
  req.type = ReqType::kStats;
  const Response r = c.call(req);
  EXPECT_EQ(r.status, Status::kOk) << r.error;
  return r.stats;
}

// ---- hash primitives -------------------------------------------------------

TEST(HmacTest, Sha256KnownVectors) {
  // FIPS 180-4 example vectors.
  const std::string abc = "abc";
  EXPECT_EQ(util::to_hex(util::sha256(abc.data(), abc.size())),
            "ba7816bf8f01cfea414140de5dae2223"
            "b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(util::to_hex(util::sha256("", 0)),
            "e3b0c44298fc1c149afbf4c8996fb924"
            "27ae41e4649b934ca495991b7852b855");
  // Two blocks (56 bytes crosses the padding boundary).
  const std::string two =
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(util::to_hex(util::sha256(two.data(), two.size())),
            "248d6a61d20638b8e5c026930c3e6039"
            "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(HmacTest, HmacSha256Rfc4231Vectors) {
  // RFC 4231 test case 2.
  const std::string key = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  EXPECT_EQ(util::to_hex(util::hmac_sha256(key.data(), key.size(),
                                           msg.data(), msg.size())),
            "5bdcc146bf60754e6a042426089575c7"
            "5a003f089d2739839dec58b964ec3843");
  // Test case 6: a key longer than the 64-byte block is pre-hashed.
  const std::string long_key(131, 0xaa);
  const std::string msg6 = "Test Using Larger Than Block-Size Key - "
                           "Hash Key First";
  EXPECT_EQ(util::to_hex(util::hmac_sha256(long_key.data(), long_key.size(),
                                           msg6.data(), msg6.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f"
            "8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, ConstantTimeEqual) {
  const std::uint8_t a[4] = {1, 2, 3, 4};
  const std::uint8_t b[4] = {1, 2, 3, 4};
  const std::uint8_t c[4] = {1, 2, 3, 5};
  EXPECT_TRUE(util::constant_time_equal(a, b, 4));
  EXPECT_FALSE(util::constant_time_equal(a, c, 4));
}

// ---- handshake message codecs ----------------------------------------------

TEST(AuthCodecTest, RoundTrip) {
  Challenge c;
  c.flags = kAuthFlagRequired;
  random_nonce(c.nonce);
  std::uint8_t cb[kChallengeBytes];
  encode_challenge(c, cb);
  const Challenge c2 = parse_challenge(cb, sizeof cb);
  EXPECT_EQ(c2.flags, c.flags);
  EXPECT_EQ(std::memcmp(c2.nonce, c.nonce, kAuthNonceBytes), 0);

  ClientProof p;
  random_nonce(p.nonce);
  client_mac("k", c.nonce, p.nonce, p.mac);
  std::uint8_t pb[kClientProofBytes];
  encode_client_proof(p, pb);
  const ClientProof p2 = parse_client_proof(pb, sizeof pb);
  EXPECT_EQ(std::memcmp(p2.mac, p.mac, kAuthMacBytes), 0);

  Verdict v;
  v.status = 1;
  server_mac("k", c.nonce, p.nonce, v.mac);
  std::uint8_t vb[kVerdictBytes];
  encode_verdict(v, vb);
  const Verdict v2 = parse_verdict(vb, sizeof vb);
  EXPECT_EQ(v2.status, 1);
  EXPECT_EQ(std::memcmp(v2.mac, v.mac, kAuthMacBytes), 0);
}

TEST(AuthCodecTest, EveryTruncationRejected) {
  Challenge c;
  random_nonce(c.nonce);
  std::uint8_t cb[kChallengeBytes];
  encode_challenge(c, cb);
  for (std::size_t n = 0; n < sizeof cb; ++n)
    EXPECT_THROW(parse_challenge(cb, n), AuthError) << n;

  ClientProof p;
  random_nonce(p.nonce);
  std::uint8_t pb[kClientProofBytes];
  encode_client_proof(p, pb);
  for (std::size_t n = 0; n < sizeof pb; ++n)
    EXPECT_THROW(parse_client_proof(pb, n), AuthError) << n;

  Verdict v;
  std::uint8_t vb[kVerdictBytes];
  encode_verdict(v, vb);
  for (std::size_t n = 0; n < sizeof vb; ++n)
    EXPECT_THROW(parse_verdict(vb, n), AuthError) << n;
}

TEST(AuthCodecTest, CorruptedFieldsRejected) {
  Challenge c;
  random_nonce(c.nonce);
  std::uint8_t cb[kChallengeBytes];
  encode_challenge(c, cb);
  {
    std::uint8_t bad[kChallengeBytes];
    std::memcpy(bad, cb, sizeof cb);
    bad[0] ^= 0xff;  // magic
    EXPECT_THROW(parse_challenge(bad, sizeof bad), AuthError);
  }
  {
    std::uint8_t bad[kChallengeBytes];
    std::memcpy(bad, cb, sizeof cb);
    bad[4] = 99;  // version
    EXPECT_THROW(parse_challenge(bad, sizeof bad), AuthError);
  }
  {
    std::uint8_t bad[kChallengeBytes];
    std::memcpy(bad, cb, sizeof cb);
    bad[6] = 1;  // reserved byte must be zero
    EXPECT_THROW(parse_challenge(bad, sizeof bad), AuthError);
  }
}

TEST(AuthCodecTest, MacRolesAreDistinct) {
  std::uint8_t sn[kAuthNonceBytes], cn[kAuthNonceBytes];
  random_nonce(sn);
  random_nonce(cn);
  std::uint8_t cm[kAuthMacBytes], sm[kAuthMacBytes];
  client_mac("key", sn, cn, cm);
  server_mac("key", sn, cn, sm);
  // A server that just echoes the client's MAC (reflection) must fail.
  EXPECT_NE(std::memcmp(cm, sm, kAuthMacBytes), 0);
}

// ---- the handshake over a socket pair --------------------------------------

TEST(HandshakeTest, MatchingKeysShakeHands) {
  auto pair = util::socket_pair();
  AuthConfig cfg;
  cfg.key = "shared-secret";
  cfg.handshake_timeout_ms = 2000;
  std::thread srv([&]() { auth_accept(pair.first, cfg); });
  EXPECT_NO_THROW(auth_connect(pair.second, cfg));
  srv.join();
}

TEST(HandshakeTest, WrongKeyRejected) {
  auto pair = util::socket_pair();
  AuthConfig scfg;
  scfg.key = "right";
  AuthConfig ccfg;
  ccfg.key = "wrong";
  std::thread srv([&]() { EXPECT_THROW(auth_accept(pair.first, scfg), AuthError); });
  EXPECT_THROW(auth_connect(pair.second, ccfg), AuthError);
  srv.join();
}

TEST(HandshakeTest, MissingClientKeyRejected) {
  auto pair = util::socket_pair();
  AuthConfig scfg;
  scfg.key = "right";
  AuthConfig ccfg;  // no key
  std::thread srv([&]() { EXPECT_THROW(auth_accept(pair.first, scfg), Error); });
  EXPECT_THROW(auth_connect(pair.second, ccfg), AuthError);
  srv.join();
}

TEST(HandshakeTest, ClientRefusesDowngrade) {
  // A server that does not require auth, against a client configured
  // with a key: the client must refuse rather than silently talk to a
  // possibly spoofed endpoint.
  auto pair = util::socket_pair();
  AuthConfig scfg;  // no key: optional auth
  AuthConfig ccfg;
  ccfg.key = "i-expected-auth";
  std::thread srv([&]() { EXPECT_NO_THROW(auth_accept(pair.first, scfg)); });
  EXPECT_THROW(auth_connect(pair.second, ccfg), AuthError);
  srv.join();
}

TEST(HandshakeTest, ReplayedProofFails) {
  AuthConfig cfg;
  cfg.key = "replay-key";
  std::vector<std::uint8_t> captured(kClientProofBytes);
  {
    // A legitimate exchange, with the client side played by hand so the
    // proof bytes can be captured.
    auto pair = util::socket_pair();
    std::thread srv([&]() { auth_accept(pair.first, cfg); });
    std::uint8_t cb[kChallengeBytes];
    ASSERT_EQ(pair.second.recv_exact(cb, sizeof cb), sizeof cb);
    const Challenge c = parse_challenge(cb, sizeof cb);
    ClientProof p;
    random_nonce(p.nonce);
    client_mac(cfg.key, c.nonce, p.nonce, p.mac);
    encode_client_proof(p, captured.data());
    pair.second.send_all(captured.data(), captured.size());
    std::uint8_t vb[kVerdictBytes];
    ASSERT_EQ(pair.second.recv_exact(vb, sizeof vb), sizeof vb);
    EXPECT_EQ(parse_verdict(vb, sizeof vb).status, 0);
    srv.join();
  }
  {
    // The same proof replayed on a fresh connection: the new challenge
    // nonce changes the expected MAC, so the replay is rejected.
    auto pair = util::socket_pair();
    std::thread srv(
        [&]() { EXPECT_THROW(auth_accept(pair.first, cfg), AuthError); });
    std::uint8_t cb[kChallengeBytes];
    ASSERT_EQ(pair.second.recv_exact(cb, sizeof cb), sizeof cb);
    pair.second.send_all(captured.data(), captured.size());
    std::uint8_t vb[kVerdictBytes];
    ASSERT_EQ(pair.second.recv_exact(vb, sizeof vb), sizeof vb);
    EXPECT_EQ(parse_verdict(vb, sizeof vb).status, 1);
    srv.join();
  }
}

TEST(HandshakeTest, TruncatedPreambleRejected) {
  auto pair = util::socket_pair();
  AuthConfig cfg;
  cfg.key = "k";
  cfg.handshake_timeout_ms = 2000;
  std::thread srv([&]() { EXPECT_THROW(auth_accept(pair.first, cfg), Error); });
  std::uint8_t cb[kChallengeBytes];
  ASSERT_EQ(pair.second.recv_exact(cb, sizeof cb), sizeof cb);
  const std::uint8_t junk[10] = {'V', 'P', 'A', '8', 8, 0, 0, 0, 1, 2};
  pair.second.send_all(junk, sizeof junk);
  pair.second.shutdown_both();
  srv.join();
}

// ---- bounded socket operations ---------------------------------------------

TEST(SocketHardeningTest, ConnectFailsInBoundedTime) {
  // A listener whose accept queue is full drops further SYNs, leaving
  // the next connect stuck in SYN_SENT — a lab-made black hole, unlike
  // TEST-NET-1 which NATed or sandboxed hosts sometimes answer for.
  // (With tcp_abort_on_overflow the kernel RSTs instead; that errors
  // immediately, which also satisfies the bound.)
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::listen(lfd, 0), 0);  // minimal queue, never accepted
  socklen_t alen = sizeof addr;
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen), 0);
  const int port = ntohs(addr.sin_port);

  std::vector<Socket> fillers;
  bool timed_out = false;
  std::int64_t ms = 0;
  for (int i = 0; i < 16 && !timed_out; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    try {
      fillers.push_back(util::connect_tcp("127.0.0.1", port, 400));
    } catch (const Error&) {
      timed_out = true;
      ms = std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - t0)
               .count();
    }
  }
  ::close(lfd);
  ASSERT_TRUE(timed_out)
      << "a backlog-0 listener admitted 16 unaccepted connections";
  EXPECT_LT(ms, 5000) << "connect must fail in bounded time, not kernel "
                         "SYN-retry minutes";
}

TEST(SocketHardeningTest, SendAllSurvivesTinySndbuf) {
  // Partial-write regression: a tiny SO_SNDBUF forces send() to take
  // the payload in many short slices; send_all must deliver every byte
  // in order anyway.
  auto pair = util::socket_pair();
  const int tiny = 4096;
  ASSERT_EQ(::setsockopt(pair.first.fd(), SOL_SOCKET, SO_SNDBUF, &tiny,
                         sizeof tiny),
            0);
  std::vector<std::uint8_t> payload(1 << 20);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 1315423911u >> 17);
  std::vector<std::uint8_t> got(payload.size());
  std::thread reader([&]() {
    std::size_t off = 0;
    // Drain slowly on purpose: the writer must block and resume.
    while (off < got.size()) {
      const std::size_t n = pair.second.recv_some(
          got.data() + off, std::min<std::size_t>(8192, got.size() - off));
      ASSERT_GT(n, 0u);
      off += n;
      if (off % (64 * 8192) == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  pair.first.send_all(payload.data(), payload.size());
  reader.join();
  EXPECT_EQ(got, payload);
}

TEST(SocketHardeningTest, FramesSurviveTinyBuffersBothSides) {
  // The same regression at the protocol layer: a whole frame pushed
  // through 4 KiB socket buffers round-trips bit-identical.
  auto pair = util::socket_pair();
  const int tiny = 4096;
  ASSERT_EQ(::setsockopt(pair.first.fd(), SOL_SOCKET, SO_SNDBUF, &tiny,
                         sizeof tiny),
            0);
  ASSERT_EQ(::setsockopt(pair.second.fd(), SOL_SOCKET, SO_RCVBUF, &tiny,
                         sizeof tiny),
            0);
  std::vector<std::uint8_t> frame(3 * 1024 * 1024 + 17);
  std::iota(frame.begin(), frame.end(), std::uint8_t{0});
  std::thread writer([&]() { write_frame(pair.first, frame); });
  std::vector<std::uint8_t> got;
  ASSERT_TRUE(read_frame(pair.second, got));
  writer.join();
  EXPECT_EQ(got, frame);
}

TEST(SocketHardeningTest, SendTimeoutUnwedgesStalledPeer) {
  // A peer that accepts and never reads: once both the socket buffers
  // are full, send_all must throw SocketTimeout instead of blocking
  // forever.
  auto pair = util::socket_pair();
  pair.first.set_send_timeout(200);
  std::vector<std::uint8_t> payload(64 << 20, 0xab);
  EXPECT_THROW(pair.first.send_all(payload.data(), payload.size()),
               SocketTimeout);
}

TEST(SocketHardeningTest, RecvDeadlineDefeatsByteTrickle) {
  // One byte per 50 ms defeats any per-recv timer; the total deadline
  // still fires.
  auto pair = util::socket_pair();
  std::atomic<bool> stop{false};
  std::thread trickler([&]() {
    const std::uint8_t b = 0x42;
    for (int i = 0; i < 40 && !stop.load(); ++i) {
      try {
        pair.first.send_all(&b, 1);
      } catch (const Error&) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
  std::uint8_t buf[100];
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(pair.second.recv_exact_deadline(buf, sizeof buf, 300),
               SocketTimeout);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_LT(ms, 2000);
  stop.store(true);
  pair.second.shutdown_both();
  trickler.join();
}

// ---- the server's accept-path defenses -------------------------------------

TEST(ServerAuthTest, TcpEndToEndWithKey) {
  ServerOptions so;
  so.tcp_port = 0;
  so.jobs = 2;
  so.auth_key = "integration-key";
  Server server(so);
  server.start();

  Client good = Client::connect_tcp("", server.tcp_port(),
                                    "integration-key", 2000);
  Request req;
  req.type = ReqType::kHealth;
  const Response r = good.call(req);
  ASSERT_EQ(r.status, Status::kOk) << r.error;
  EXPECT_TRUE(r.ready);

  // Wrong key: a typed AuthError before any frame is exchanged, and
  // the server's stats count the rejection.
  EXPECT_THROW(
      Client::connect_tcp("", server.tcp_port(), "not-the-key", 2000),
      AuthError);
  // Missing key: same typed rejection, client-side.
  EXPECT_THROW(Client::connect_tcp("", server.tcp_port(), "", 2000),
               AuthError);

  const StatsBody stats = fetch_stats(good);
  EXPECT_GE(stats.auth_failures, 1u);
  server.stop();
}

TEST(ServerAuthTest, AuthErrorIsNeverRetried) {
  ServerOptions so;
  so.tcp_port = 0;
  so.jobs = 1;
  so.auth_key = "retry-key";
  Server server(so);
  server.start();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(
      Client::connect_tcp("", server.tcp_port(), "wrong", 2000), AuthError);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  // A definitive rejection must not burn a retry/backoff schedule.
  EXPECT_LT(ms, 1500);
  server.stop();
}

TEST(ServerAuthTest, SlowlorisIsReaped) {
  ServerOptions so;
  so.tcp_port = 0;
  so.jobs = 1;
  so.auth_key = "reap-key";
  so.idle_timeout_ms = 200;
  Server server(so);
  server.start();

  // An authenticated client that then goes silent: the connection must
  // not outlive the idle deadline.
  Client idler = Client::connect_tcp("", server.tcp_port(), "reap-key", 2000);
  Request health;
  health.type = ReqType::kHealth;
  ASSERT_EQ(idler.call(health).status, Status::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(700));

  Client fresh = Client::connect_tcp("", server.tcp_port(), "reap-key", 2000);
  const StatsBody stats = fetch_stats(fresh);
  EXPECT_GE(stats.idle_reaps, 1u)
      << "the idle connection must have been reaped";
  server.stop();
}

TEST(ServerHardeningTest, OversizedFrameHeaderRejected) {
  TempFile sock("oversized");
  ServerOptions so;
  so.unix_path = sock.path();
  so.jobs = 1;
  so.max_request_frame_bytes = 1 << 20;
  Server server(so);
  server.start();

  // A hostile length prefix far above the configured ceiling: the
  // server must drop the connection without allocating the claimed
  // buffer (the ceiling is checked before the body read).
  {
    Socket raw = util::connect_unix(sock.path());
    const std::uint32_t claimed = 48u << 20;
    std::uint8_t hdr[4] = {
        static_cast<std::uint8_t>(claimed & 0xff),
        static_cast<std::uint8_t>((claimed >> 8) & 0xff),
        static_cast<std::uint8_t>((claimed >> 16) & 0xff),
        static_cast<std::uint8_t>((claimed >> 24) & 0xff)};
    raw.send_all(hdr, sizeof hdr);
    std::uint8_t byte = 0;
    // The server closes on us; EOF (0) or a reset both prove it.
    try {
      EXPECT_EQ(raw.recv_exact(&byte, 1), 0u);
    } catch (const Error&) {
    }
  }
  // The daemon itself is unharmed.
  Client c = Client::connect_unix(sock.path());
  Request health;
  health.type = ReqType::kHealth;
  EXPECT_EQ(c.call(health).status, Status::kOk);
  server.stop();
}

TEST(ServerHardeningTest, FrameDeadlineDefeatsTrickledBody) {
  TempFile sock("trickle");
  ServerOptions so;
  so.unix_path = sock.path();
  so.jobs = 1;
  so.frame_deadline_ms = 300;
  Server server(so);
  server.start();

  {
    Socket raw = util::connect_unix(sock.path());
    const std::uint32_t claimed = 1000;
    std::uint8_t hdr[4] = {
        static_cast<std::uint8_t>(claimed & 0xff),
        static_cast<std::uint8_t>((claimed >> 8) & 0xff), 0, 0};
    raw.send_all(hdr, sizeof hdr);
    // Trickle the body at one byte per 50 ms: the total frame deadline
    // must cut us off long before the 1000 bytes arrive.
    const std::uint8_t b = 0;
    try {
      for (int i = 0; i < 40; ++i) {
        raw.send_all(&b, 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      FAIL() << "server kept reading a trickled frame past its deadline";
    } catch (const Error&) {
      // The server dropped us: exactly the point.
    }
  }
  Client c = Client::connect_unix(sock.path());
  const StatsBody stats = fetch_stats(c);
  EXPECT_GE(stats.idle_reaps, 1u);
  server.stop();
}

// ---- membership pool bound + reaper ----------------------------------------

TEST(MembershipPoolTest, PoolIsBoundedAndReaped) {
  TempFile sock("pool");
  ServerOptions so;
  so.unix_path = sock.path();
  so.jobs = 1;
  so.shard_id = 1;
  Server server(so);
  server.start();

  cluster::MembershipOptions mopt;
  mopt.probe_cap_ms = 50;  // frequent prober wakeups -> prompt reaping
  mopt.pool_cap = 2;
  mopt.pool_idle_ms = 150;
  cluster::Membership m(
      {cluster::ShardEndpoint::parse(1, sock.path())}, mopt);
  m.start();
  ASSERT_EQ(m.up_count(), 1u);

  // Four concurrent checkouts force four dials; only pool_cap survive
  // the give-back.
  std::vector<Client> held;
  for (int i = 0; i < 4; ++i) held.push_back(m.take_conn(0));
  for (auto& c : held) m.give_back(0, std::move(c));
  held.clear();
  EXPECT_EQ(m.pooled_count(), 2u) << "give_back must respect pool_cap";

  // Idle past the window: the prober's sweep closes them.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (m.pooled_count() > 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_EQ(m.pooled_count(), 0u)
      << "idle pooled connections must be reaped";
  m.stop();
  server.stop();
}

// ---- the netem relay -------------------------------------------------------

TEST(NetemTest, ScheduleParserRejectsGarbage) {
  NetemOptions opt;
  opt.target_unix = "unused.sock";
  for (const char* bad :
       {"drop", "drop:101", "drop:-1", "half-open:0", "trickle:0",
        "warp-speed:9", "delay-ms:xyz"}) {
    NetemOptions o = opt;
    o.schedule = bad;
    NetemRelay r(std::move(o));
    EXPECT_THROW(r.start(), Error) << bad;
  }
}

TEST(NetemTest, TransparentRelayPassesFrames) {
  TempFile ssock("relay_srv");
  ServerOptions so;
  so.unix_path = ssock.path();
  so.jobs = 1;
  Server server(so);
  server.start();

  TempFile rsock("relay_lst");
  NetemOptions nopt;
  nopt.listen_unix = rsock.path();
  nopt.target_unix = ssock.path();
  NetemRelay relay(std::move(nopt));
  relay.start();

  Client c = Client::connect_unix(rsock.path());
  Request health;
  health.type = ReqType::kHealth;
  const Response r = c.call(health);
  EXPECT_EQ(r.status, Status::kOk) << r.error;
  EXPECT_GT(relay.forwarded_bytes(), 0u);
  relay.stop();
  server.stop();
}

TEST(NetemTest, DropScheduleCutsConnections) {
  TempFile ssock("drop_srv");
  ServerOptions so;
  so.unix_path = ssock.path();
  so.jobs = 1;
  Server server(so);
  server.start();

  TempFile rsock("drop_lst");
  NetemOptions nopt;
  nopt.listen_unix = rsock.path();
  nopt.target_unix = ssock.path();
  nopt.schedule = "drop:100";
  nopt.seed = 11;
  NetemRelay relay(std::move(nopt));
  relay.start();

  // The seeded cut fires after a random prefix of up to 8 KiB has
  // flowed; health round-trips are tiny, so keep hammering one
  // connection until the cumulative bytes cross the threshold.
  Request health;
  health.type = ReqType::kHealth;
  RetryPolicy once;
  once.max_attempts = 1;
  once.request_timeout_ms = 1000;
  int failures = 0;
  try {
    Client c = Client::connect_unix(rsock.path());
    for (int i = 0; i < 2000; ++i) (void)c.call_retry(health, once);
  } catch (const Error&) {
    ++failures;
  }
  EXPECT_GT(failures, 0) << "a 100% drop schedule must cut connections";
  EXPECT_GE(relay.cut_connections(), 1u);
  relay.stop();
  server.stop();
}

TEST(NetemTest, PartitionWindowOpensAndHeals) {
  TempFile ssock("part_srv");
  ServerOptions so;
  so.unix_path = ssock.path();
  so.jobs = 1;
  Server server(so);
  server.start();

  TempFile rsock("part_lst");
  NetemOptions nopt;
  nopt.listen_unix = rsock.path();
  nopt.target_unix = ssock.path();
  nopt.schedule = "partition:0:600";
  NetemRelay relay(std::move(nopt));
  relay.start();
  EXPECT_TRUE(relay.partitioned());

  Request health;
  health.type = ReqType::kHealth;
  // Inside the window: connections are black-holed — accepted, then
  // nothing — so a bounded client times out.
  RetryPolicy once;
  once.max_attempts = 1;
  once.request_timeout_ms = 300;
  EXPECT_THROW(
      {
        Client c = Client::connect_unix(rsock.path());
        (void)c.call_retry(health, once);
      },
      Error);
  EXPECT_GT(relay.blackholed_bytes(), 0u);

  // After the window closes, the path heals.
  while (relay.partitioned())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Client c = Client::connect_unix(rsock.path());
  const Response r = c.call(health);
  EXPECT_EQ(r.status, Status::kOk) << r.error;
  relay.stop();
  server.stop();
}

TEST(NetemTest, TrickleDelaysButDelivers) {
  TempFile ssock("trk_srv");
  ServerOptions so;
  so.unix_path = ssock.path();
  so.jobs = 1;
  Server server(so);
  server.start();

  TempFile rsock("trk_lst");
  NetemOptions nopt;
  nopt.listen_unix = rsock.path();
  nopt.target_unix = ssock.path();
  nopt.schedule = "trickle:16,delay-ms:1";
  NetemRelay relay(std::move(nopt));
  relay.start();

  Client c = Client::connect_unix(rsock.path());
  Request health;
  health.type = ReqType::kHealth;
  const Response r = c.call(health);
  EXPECT_EQ(r.status, Status::kOk) << r.error;
  relay.stop();
  server.stop();
}

}  // namespace
}  // namespace vppb::server
