// Standalone deterministic fuzzer for every untrusted-input decoder:
// the text/binary/chunked trace loaders (strict and salvage) and the
// wire-protocol request/response decoders.
//
// There is no libFuzzer in the toolchain, so this is a self-contained
// driver: a xorshift64* PRNG mutates a fixed seed corpus (plus any
// files in --corpus-dir) and feeds the result to every decoder.  The
// oracle is threefold:
//
//   1. no decoder may escape with anything but vppb::Error — no
//      crashes, no std::bad_alloc from hostile counts, no UB (run it
//      under VPPB_SANITIZE=address,undefined to make that bite);
//   2. whatever salvage returns must pass Trace::validate();
//   3. salvage is deterministic — decoding the same damaged bytes
//      twice must yield bit-identical traces and identical reports.
//
// Every failure prints the seed and iteration, so a repro is one
// command: fuzz_decoder --seed S --iterations I.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "server/auth.hpp"
#include "server/protocol.hpp"
#include "trace/binary.hpp"
#include "trace/chunked.hpp"
#include "trace/io.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace vppb {
namespace {

std::uint64_t g_rng_state = 1;

std::uint64_t next_rand() {
  std::uint64_t x = g_rng_state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  g_rng_state = x;
  return x * 0x2545f4914f6cdd1dULL;
}

/// A small but representative trace: two threads, paired calls,
/// single-op events, an interned name table.
trace::Trace seed_trace() {
  trace::Trace t;
  t.upsert_thread(1).name = t.strings.intern("main");
  t.upsert_thread(2).name = t.strings.intern("worker");
  auto rec = [](std::int64_t us, trace::ThreadId tid, trace::Op op,
                trace::Phase phase) {
    trace::Record r;
    r.at = SimTime::micros(us);
    r.tid = tid;
    r.op = op;
    r.phase = phase;
    return r;
  };
  using trace::Op;
  using trace::Phase;
  t.records.push_back(rec(10, 1, Op::kThrCreate, Phase::kCall));
  t.records.push_back(rec(12, 1, Op::kThrCreate, Phase::kReturn));
  t.records.push_back(rec(15, 2, Op::kUserMark, Phase::kCall));
  t.records.push_back(rec(20, 1, Op::kThrJoin, Phase::kCall));
  t.records.push_back(rec(25, 2, Op::kThrExit, Phase::kCall));
  t.records.push_back(rec(30, 1, Op::kThrJoin, Phase::kReturn));
  return t;
}

std::vector<std::uint8_t> mutate(std::vector<std::uint8_t> bytes) {
  const std::uint64_t ops = 1 + next_rand() % 4;
  for (std::uint64_t i = 0; i < ops && !bytes.empty(); ++i) {
    const std::size_t at = next_rand() % bytes.size();
    switch (next_rand() % 5) {
      case 0:  // flip one bit
        bytes[at] ^= static_cast<std::uint8_t>(1u << (next_rand() % 8));
        break;
      case 1:  // overwrite with a hostile byte
        bytes[at] = static_cast<std::uint8_t>(next_rand());
        break;
      case 2:  // truncate, as a crash or torn write would
        bytes.resize(at);
        break;
      case 3:  // insert a byte, shifting everything after it
        bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                     static_cast<std::uint8_t>(next_rand()));
        break;
      case 4:  // drop a byte
        bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(at));
        break;
    }
  }
  return bytes;
}

struct Stats {
  std::uint64_t strict_ok = 0, strict_rejected = 0;
  std::uint64_t salvage_ok = 0, salvage_rejected = 0;
  std::uint64_t proto_rejected = 0;
};

/// Decodes `bytes` as a trace with `loader` strictly and in salvage
/// mode, enforcing oracles 1–3.  Returns false (after printing a
/// diagnostic) on an oracle violation.
template <typename Loader>
bool check_trace_loader(const char* name, const Loader& loader,
                        const std::vector<std::uint8_t>& bytes, Stats& stats) {
  try {
    loader(bytes, trace::LoadOptions{}, nullptr).validate();
    ++stats.strict_ok;
  } catch (const Error&) {
    ++stats.strict_rejected;
  }
  trace::LoadOptions opt;
  opt.salvage = true;
  try {
    trace::LoadReport report;
    const trace::Trace got = loader(bytes, opt, &report);
    got.validate();  // oracle 2: a salvaged trace is a valid trace
    trace::LoadReport report2;
    const trace::Trace again = loader(bytes, opt, &report2);
    // Oracle 3: same bytes in, same trace and report out.
    if (trace::to_binary(got) != trace::to_binary(again) ||
        report.records_recovered != report2.records_recovered ||
        report.records_dropped != report2.records_dropped) {
      std::fprintf(stderr, "FUZZ: %s salvage is nondeterministic\n", name);
      return false;
    }
    ++stats.salvage_ok;
  } catch (const Error&) {
    ++stats.salvage_rejected;  // unusable header: fine, it threw cleanly
  }
  return true;
}

bool check_input(const std::vector<std::uint8_t>& bytes, Stats& stats) {
  bool ok = true;
  ok &= check_trace_loader(
      "from_binary",
      [](const std::vector<std::uint8_t>& b, const trace::LoadOptions& o,
         trace::LoadReport* r) { return trace::from_binary(b.data(), b.size(), o, r); },
      bytes, stats);
  ok &= check_trace_loader(
      "from_chunked",
      [](const std::vector<std::uint8_t>& b, const trace::LoadOptions& o,
         trace::LoadReport* r) { return trace::from_chunked(b.data(), b.size(), o, r); },
      bytes, stats);
  ok &= check_trace_loader(
      "from_text",
      [](const std::vector<std::uint8_t>& b, const trace::LoadOptions& o,
         trace::LoadReport* r) {
        return trace::from_text(std::string(b.begin(), b.end()), o, r);
      },
      bytes, stats);
  ok &= check_trace_loader(
      "from_any",
      [](const std::vector<std::uint8_t>& b, const trace::LoadOptions& o,
         trace::LoadReport* r) { return trace::from_any(b.data(), b.size(), o, r); },
      bytes, stats);
  try {
    (void)server::decode_request(bytes);
  } catch (const Error&) {
    ++stats.proto_rejected;
  }
  try {
    (void)server::decode_response(bytes);
  } catch (const Error&) {
    ++stats.proto_rejected;
  }
  // Protocol v8 handshake preambles: fixed-size parsers on the
  // pre-auth path, where a crash would be reachable by anyone who can
  // open a TCP connection.  AuthError derives from Error, so the
  // oracle is the same: typed rejection or clean acceptance, nothing
  // else.
  try {
    (void)server::parse_challenge(bytes.data(), bytes.size());
  } catch (const Error&) {
    ++stats.proto_rejected;
  }
  try {
    (void)server::parse_client_proof(bytes.data(), bytes.size());
  } catch (const Error&) {
    ++stats.proto_rejected;
  }
  try {
    (void)server::parse_verdict(bytes.data(), bytes.size());
  } catch (const Error&) {
    ++stats.proto_rejected;
  }
  return ok;
}

int run(std::uint64_t seed, std::uint64_t iterations,
        const std::string& corpus_dir, const std::string& dump_last) {
  const trace::Trace t = seed_trace();
  std::vector<std::vector<std::uint8_t>> seeds;
  seeds.push_back(trace::to_binary(t));
  seeds.push_back(trace::to_chunked(t, 2));
  {
    const std::string text = trace::to_text(t);
    seeds.emplace_back(text.begin(), text.end());
  }
  {
    server::Request req;
    req.type = server::ReqType::kPredict;
    req.trace_path = "corpus/seed.trace";
    req.max_cpus = 8;
    req.deadline_ms = 100;
    seeds.push_back(server::encode(req));
  }
  {
    // Protocol v6 request: both identity fields populated, so mutants
    // reach the client_id/origin_id varint decodes at the payload tail.
    server::Request req;
    req.type = server::ReqType::kPredict;
    req.trace_path = "corpus/seed.trace";
    req.max_cpus = 4;
    req.client_id = 0x1122334455667788ULL;
    req.origin_id = 0x99aabbccddeeff00ULL;
    seeds.push_back(server::encode(req));
  }
  {
    // Protocol v6 quota rejection: the typed status above the old
    // bound plus a retry_after_ms hint.
    server::Response resp;
    resp.type = server::ReqType::kPredict;
    resp.status = server::Status::kQuotaExceeded;
    resp.error = "client over quota";
    resp.retry_after_ms = 750;
    seeds.push_back(server::encode(resp));
  }
  {
    // Protocol v5 aggregated cluster response: shard identity/epoch
    // plus a per-shard stats breakdown — the widest response layout,
    // so mutants reach the shard-list decode loop and its bounds
    // checks (implausible counts, truncated mid-shard strings).
    server::Response resp;
    resp.type = server::ReqType::kStats;
    resp.shard_id = 1;
    resp.epoch = 0x1122334455667788ULL;
    resp.stats.requests = 7;
    resp.stats.cache_hits = 3;
    for (std::uint64_t id = 1; id <= 2; ++id) {
      server::ShardInfo sh;
      sh.shard_id = id;
      sh.epoch = 0xabcd0000 + id;
      sh.healthy = id == 1;
      sh.endpoint = "cdir/shard.sock";
      sh.stats.requests = id * 3;
      sh.stats.p99_us = 1234.5;
      resp.shards.push_back(sh);
    }
    seeds.push_back(server::encode(resp));
  }
  {
    // Protocol v6 brownout health payload: degraded-cluster markers
    // (brownout flag, live/total counts, stale-serve fields) plus a
    // shard row, so mutants hit the resilience tail after the list.
    server::Response resp;
    resp.type = server::ReqType::kHealth;
    resp.ready = true;
    resp.brownout = true;
    resp.live_shards = 1;
    resp.total_shards = 4;
    resp.served_stale = true;
    resp.stale_age_ms = 2500;
    resp.retry_after_ms = 100;
    server::ShardInfo sh;
    sh.shard_id = 1;
    sh.healthy = true;
    sh.endpoint = "cdir/shard0.sock";
    sh.stats.brownout_sheds = 9;
    sh.stats.stale_serves = 4;
    sh.stats.quota_rejections = 2;
    resp.shards.push_back(sh);
    seeds.push_back(server::encode(resp));
  }
  {
    // Protocol v7 traced request: the full trace-context tail
    // (trace_id, parent span, sampled, want_timeline), so mutants
    // reach the context varints after the identity fields.
    server::Request req;
    req.type = server::ReqType::kSimulate;
    req.trace_path = "corpus/seed.trace";
    req.cpus = 4;
    req.client_id = 0x1111;
    req.trace_id = 0xfeedfacecafebeefULL;
    req.parent_span_id = 0x2222;
    req.sampled = true;
    req.want_timeline = true;
    seeds.push_back(server::encode(req));
  }
  {
    // Protocol v7 tracedump response: a stage timeline (duration and
    // marker entries at mixed depths) plus wire spans (full and
    // instant), so mutants reach both v7 list decodes — their count
    // guards, string fields, and the negative-duration encodings.
    server::Response resp;
    resp.type = server::ReqType::kTraceDump;
    resp.shard_id = 2;
    resp.slo_burning = true;
    resp.trace_id = 0xfeedfacecafebeefULL;
    resp.stats.slo_p99_ms = 25.0;
    resp.stats.lat_burn_5m = 14.5;
    resp.stats.sampled_requests = 3;
    resp.stats.trace_dropped = 1;
    resp.timeline.push_back({"queue", 0, 150, 0});
    resp.timeline.push_back({"forward shard=2", 150, 9000, 0});
    resp.timeline.push_back({"simulate", 400, 8000, 1});
    resp.timeline.push_back({"hedge", 700, -1, 0});
    server::WireSpan sp;
    sp.pid = 2;
    sp.tid = 3;
    sp.name = "server.dispatch";
    sp.cat = "server";
    sp.start_unix_ns = 1700000000123456789LL;
    sp.dur_ns = 420000;
    sp.trace_id = 0xfeedfacecafebeefULL;
    sp.arg_name = "cpus";
    sp.arg_value = 4;
    resp.spans.push_back(sp);
    server::WireSpan marker;
    marker.pid = 0;
    marker.name = "failover";
    marker.cat = "proxy";
    marker.start_unix_ns = 1700000000123400000LL;
    marker.dur_ns = -1;
    resp.spans.push_back(marker);
    seeds.push_back(server::encode(resp));
  }
  {
    // Protocol v8 handshake preambles, one of each message: valid
    // magic/version bytes so mutants get past the first check and into
    // the flag, reserved-byte, and length validation.
    server::Challenge ch;
    ch.flags = server::kAuthFlagRequired;
    for (std::size_t i = 0; i < server::kAuthNonceBytes; ++i)
      ch.nonce[i] = static_cast<std::uint8_t>(0xc0 + i);
    std::uint8_t ch_buf[server::kChallengeBytes];
    server::encode_challenge(ch, ch_buf);
    seeds.emplace_back(ch_buf, ch_buf + sizeof ch_buf);

    server::ClientProof proof;
    for (std::size_t i = 0; i < server::kAuthNonceBytes; ++i)
      proof.nonce[i] = static_cast<std::uint8_t>(0x10 + i);
    server::client_mac("fuzz-key", ch.nonce, proof.nonce, proof.mac);
    std::uint8_t p_buf[server::kClientProofBytes];
    server::encode_client_proof(proof, p_buf);
    seeds.emplace_back(p_buf, p_buf + sizeof p_buf);

    server::Verdict v;
    v.status = 0;
    server::server_mac("fuzz-key", ch.nonce, proof.nonce, v.mac);
    std::uint8_t v_buf[server::kVerdictBytes];
    server::encode_verdict(v, v_buf);
    seeds.emplace_back(v_buf, v_buf + sizeof v_buf);
  }
  // Self-check: undamaged seeds must load strictly, or every mutant
  // would be exercising nothing but the header check.
  trace::from_binary(seeds[0].data(), seeds[0].size());
  trace::from_chunked(seeds[1].data(), seeds[1].size());

  if (!corpus_dir.empty()) {
    for (const auto& entry : std::filesystem::directory_iterator(corpus_dir)) {
      if (!entry.is_regular_file()) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::vector<std::uint8_t> bytes(
          (std::istreambuf_iterator<char>(in)),
          std::istreambuf_iterator<char>());
      if (!bytes.empty()) seeds.push_back(std::move(bytes));
    }
  }

  g_rng_state = seed ? seed : 1;
  Stats stats;
  // The checked-in corpus holds known-nasty inputs: run them unmutated
  // first, so a regression reproduces even at --iterations 0.
  for (const auto& s : seeds) {
    if (!check_input(s, stats)) return 1;
  }
  for (std::uint64_t i = 0; i < iterations; ++i) {
    const std::vector<std::uint8_t> input =
        mutate(seeds[next_rand() % seeds.size()]);
    if (!dump_last.empty()) {
      // A crash kills the process before any report prints; the dump
      // file then holds the exact input that did it.
      std::ofstream out(dump_last, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(input.data()),
                static_cast<std::streamsize>(input.size()));
    }
    try {
      if (!check_input(input, stats)) {
        std::fprintf(stderr, "FUZZ: failed at --seed %llu iteration %llu\n",
                     static_cast<unsigned long long>(seed),
                     static_cast<unsigned long long>(i));
        return 1;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "FUZZ: unexpected %s at --seed %llu iteration %llu\n",
                   e.what(), static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(i));
      return 1;
    }
  }
  std::printf(
      "fuzz_decoder: %llu iterations over %zu seeds: "
      "strict %llu ok / %llu rejected, salvage %llu ok / %llu rejected, "
      "protocol %llu rejected, 0 crashes\n",
      static_cast<unsigned long long>(iterations), seeds.size(),
      static_cast<unsigned long long>(stats.strict_ok),
      static_cast<unsigned long long>(stats.strict_rejected),
      static_cast<unsigned long long>(stats.salvage_ok),
      static_cast<unsigned long long>(stats.salvage_rejected),
      static_cast<unsigned long long>(stats.proto_rejected));
  return 0;
}

}  // namespace
}  // namespace vppb

int main(int argc, char** argv) {
  std::uint64_t seed = 1, iterations = 2000;
  std::string corpus_dir, dump_last;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--seed") seed = std::strtoull(value(), nullptr, 10);
    else if (arg == "--iterations") iterations = std::strtoull(value(), nullptr, 10);
    else if (arg == "--corpus-dir") corpus_dir = value();
    else if (arg == "--dump-last") dump_last = value();
    else {
      std::fprintf(stderr,
                   "usage: fuzz_decoder [--seed N] [--iterations N] "
                   "[--corpus-dir DIR] [--dump-last FILE]\n");
      return 2;
    }
  }
  return vppb::run(seed, iterations, corpus_dir, dump_last);
}
