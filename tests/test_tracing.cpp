// Tests for distributed tracing & SLO burn rates (protocol v7): wire
// round-trips of the trace context / timeline / span fields with
// every-prefix truncation, the SLO burn-rate engine under a
// deterministic clock, histogram exemplars, tracer-ring drop
// accounting, the tracing-on digest parity over every pinned golden,
// and end-to-end timeline/tracedump/SLO behaviour through an embedded
// server and a two-shard proxy rig.
//
// Run with `ctest -L obs` (the in-process suites) — the proxy rig also
// carries the cluster label.  Built under -DVPPB_SANITIZE=thread in
// the sanitizer lane.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "cluster/membership.hpp"
#include "cluster/proxy.hpp"
#include "core/engine.hpp"
#include "golden_cases.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "recorder/recorder.hpp"
#include "server/client.hpp"
#include "server/handlers.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/trace_cache.hpp"
#include "solaris/program.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"
#include "workloads/synthetic.hpp"

namespace vppb {
namespace {

using server::Client;
using server::ReqType;
using server::Request;
using server::Response;
using server::Status;

/// A fresh path under the system temp dir; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    static std::atomic<int> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("vppb_tracing_" + tag + "_" + std::to_string(::getpid()) +
              "_" + std::to_string(counter.fetch_add(1))))
                .string();
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void write_trace(const std::string& path, int threads, std::int64_t work_us) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, [&]() {
    workloads::fork_join(threads, SimTime::micros(work_us));
  });
  trace::save_file(t, path);
}

Request predict_request(const std::string& path) {
  Request req;
  req.type = ReqType::kPredict;
  req.trace_path = path;
  req.max_cpus = 4;
  return req;
}

// ---- protocol v7 wire ------------------------------------------------------

TEST(ProtocolV7Test, TraceContextRoundTripsOnRequests) {
  Request req;
  req.type = ReqType::kPredict;
  req.trace_path = "some/trace.vppb";
  req.max_cpus = 8;
  req.trace_id = 0xdeadbeefcafef00dULL;
  req.parent_span_id = 0x1234;
  req.sampled = true;
  req.want_timeline = true;
  const std::vector<std::uint8_t> full = server::encode(req);
  const Request back = server::decode_request(full);
  EXPECT_EQ(back.trace_id, req.trace_id);
  EXPECT_EQ(back.parent_span_id, req.parent_span_id);
  EXPECT_TRUE(back.sampled);
  EXPECT_TRUE(back.want_timeline);
  // Every strict prefix must be rejected with the typed error, never
  // decoded as a shorter-but-valid older request.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(full.begin(), full.begin() + cut);
    EXPECT_THROW((void)server::decode_request(prefix), Error)
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(ProtocolV7Test, TimelineAndSpansRoundTripOnResponses) {
  Response resp;
  resp.status = Status::kOk;
  resp.type = ReqType::kTraceDump;
  resp.shard_id = 3;
  resp.slo_burning = true;
  resp.trace_id = 0xabcdef;
  resp.stats.slo_p99_ms = 25.0;
  resp.stats.slo_availability = 0.999;
  resp.stats.lat_burn_5m = 7.25;
  resp.stats.avail_burn_1h = 0.5;
  resp.stats.sampled_requests = 17;
  resp.stats.trace_dropped = 4;
  resp.timeline.push_back({"queue", 0, 120, 0});
  resp.timeline.push_back({"simulate", 120, 4500, 1});
  resp.timeline.push_back({"stale-serve", 300, -1, 0});  // instant marker
  server::WireSpan full_span;
  full_span.pid = 2;
  full_span.tid = 7;
  full_span.name = "server.dispatch";
  full_span.cat = "server";
  full_span.start_unix_ns = 1700000000123456789LL;
  full_span.dur_ns = 88000;
  full_span.trace_id = 0xabcdef;
  full_span.arg_name = "cpus";
  full_span.arg_value = 4;
  resp.spans.push_back(full_span);
  server::WireSpan instant;
  instant.pid = 0;
  instant.name = "hedge";
  instant.start_unix_ns = 1700000000123000000LL;
  instant.dur_ns = -1;
  resp.spans.push_back(instant);

  const std::vector<std::uint8_t> full = server::encode(resp);
  const Response back = server::decode_response(full);
  EXPECT_TRUE(back.slo_burning);
  EXPECT_EQ(back.trace_id, resp.trace_id);
  EXPECT_DOUBLE_EQ(back.stats.slo_p99_ms, 25.0);
  EXPECT_DOUBLE_EQ(back.stats.slo_availability, 0.999);
  EXPECT_DOUBLE_EQ(back.stats.lat_burn_5m, 7.25);
  EXPECT_DOUBLE_EQ(back.stats.avail_burn_1h, 0.5);
  EXPECT_EQ(back.stats.sampled_requests, 17u);
  EXPECT_EQ(back.stats.trace_dropped, 4u);
  ASSERT_EQ(back.timeline.size(), 3u);
  EXPECT_EQ(back.timeline[0].name, "queue");
  EXPECT_EQ(back.timeline[1].dur_us, 4500);
  EXPECT_EQ(back.timeline[1].depth, 1u);
  EXPECT_EQ(back.timeline[2].dur_us, -1);
  ASSERT_EQ(back.spans.size(), 2u);
  EXPECT_EQ(back.spans[0].pid, 2u);
  EXPECT_EQ(back.spans[0].tid, 7u);
  EXPECT_EQ(back.spans[0].name, "server.dispatch");
  EXPECT_EQ(back.spans[0].start_unix_ns, full_span.start_unix_ns);
  EXPECT_EQ(back.spans[0].dur_ns, 88000);
  EXPECT_EQ(back.spans[0].trace_id, 0xabcdefu);
  EXPECT_EQ(back.spans[0].arg_name, "cpus");
  EXPECT_EQ(back.spans[0].arg_value, 4);
  EXPECT_EQ(back.spans[1].dur_ns, -1);
  EXPECT_TRUE(back.spans[1].arg_name.empty());

  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(full.begin(), full.begin() + cut);
    EXPECT_THROW((void)server::decode_response(prefix), Error)
        << "prefix of " << cut << " bytes decoded";
  }
}

// ---- SLO burn-rate engine --------------------------------------------------

TEST(SloTrackerTest, HealthyTrafficBurnsAtMostOne) {
  obs::SloTracker slo(obs::SloOptions{10.0, 0.99});
  // 1 slow / 1 failed out of 100 is exactly the allowed 1%: burn 1.0,
  // never a breach.
  for (int i = 0; i < 99; ++i) slo.record(1000.0, true, 1000);
  slo.record(50000.0, false, 1000);
  const obs::BurnRates b = slo.burn(1000);
  EXPECT_NEAR(b.lat_1m, 1.0, 1e-9);
  EXPECT_NEAR(b.avail_5m, 1.0, 1e-9);
  EXPECT_FALSE(b.burning);
}

TEST(SloTrackerTest, SustainedViolationsBreachBothWindowPairs) {
  obs::SloTracker slo(obs::SloOptions{10.0, 0.0});
  // Every request over the target: burn = 1 / 0.01 = 100 in every
  // window — far past both the fast (14.4) and slow (6.0) thresholds.
  for (int i = 0; i < 50; ++i) slo.record(50000.0, true, 2000);
  const obs::BurnRates b = slo.burn(2000);
  EXPECT_NEAR(b.lat_1m, 100.0, 1e-9);
  EXPECT_NEAR(b.lat_5m, 100.0, 1e-9);
  EXPECT_NEAR(b.lat_1h, 100.0, 1e-9);
  EXPECT_TRUE(b.burning);
}

TEST(SloTrackerTest, FastBurnNeedsTheShortWindowToo) {
  obs::SloTracker slo(obs::SloOptions{10.0, 0.0});
  // A burst of slow requests 2 minutes ago, against a long healthy
  // baseline: the 5m window burns past the slow threshold, but the 1m
  // window is clean (kills the fast pair) and the 1h window is diluted
  // below the slow threshold (kills the slow pair) — a finished burst
  // must not page.
  for (int s = 0; s <= 2800; ++s)
    for (int i = 0; i < 50; ++i) slo.record(1000.0, true, s);
  for (int i = 0; i < 600; ++i) slo.record(50000.0, true, 3000);
  for (int s = 3001; s <= 3120; ++s)
    for (int i = 0; i < 50; ++i) slo.record(1000.0, true, s);
  const obs::BurnRates b = slo.burn(3120);
  EXPECT_NEAR(b.lat_1m, 0.0, 1e-9);
  EXPECT_GT(b.lat_5m, obs::SloTracker::kSlowBurn);   // 600/6600 -> ~9.1
  EXPECT_LT(b.lat_1h, obs::SloTracker::kSlowBurn);   // diluted -> ~0.4
  EXPECT_FALSE(b.burning);
}

TEST(SloTrackerTest, HistoryAgesOutOfTheRing) {
  obs::SloTracker slo(obs::SloOptions{10.0, 0.99});
  for (int i = 0; i < 50; ++i) slo.record(50000.0, false, 5000);
  EXPECT_TRUE(slo.burn(5000).burning);
  // One hour later every window has slid past the incident.
  const obs::BurnRates later = slo.burn(5000 + 3601);
  EXPECT_DOUBLE_EQ(later.lat_1h, 0.0);
  EXPECT_DOUBLE_EQ(later.avail_1h, 0.0);
  EXPECT_FALSE(later.burning);
}

TEST(SloTrackerTest, DisabledObjectivesNeverBurn) {
  obs::SloTracker slo;
  EXPECT_FALSE(slo.enabled());
  for (int i = 0; i < 50; ++i) slo.record(50000.0, false, 1000);
  const obs::BurnRates b = slo.burn(1000);
  EXPECT_DOUBLE_EQ(b.lat_5m, 0.0);
  EXPECT_DOUBLE_EQ(b.avail_5m, 0.0);
  EXPECT_FALSE(b.burning);
}

// ---- exemplars -------------------------------------------------------------

TEST(ExemplarTest, HistogramBucketLinksToTheLastObservedTrace) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("t_ex_lat_us", "Latency", {10.0, 100.0});
  h.observe(5.0);                       // no exemplar
  h.observe(50.0, 0x00ff00ff00ff00ffULL);
  const std::string text = reg.prometheus_text();
  // The traced observation's bucket carries the OpenMetrics exemplar
  // suffix; the untraced bucket stays plain.
  EXPECT_NE(text.find("t_ex_lat_us_bucket{le=\"100\"} 2 "
                      "# {trace_id=\"00ff00ff00ff00ff\"} 50"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("t_ex_lat_us_bucket{le=\"10\"} 1\n"),
            std::string::npos)
      << text;
}

// ---- tracer: drops, context, clock ----------------------------------------

TEST(TracerTest, RingOverflowIsCountedAndExposed) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.enable();
  const std::size_t before = tracer.dropped_count();
  ASSERT_EQ(before, 0u);  // clear() resets the per-ring overflow
  for (std::size_t i = 0; i < obs::Tracer::kRingCapacity + 100; ++i)
    obs::instant("overfill", "test");
  tracer.disable();
  EXPECT_GE(tracer.dropped_count(), 100u);
  const std::string text = obs::Registry::global().prometheus_text();
  EXPECT_NE(text.find("vppb_trace_dropped_total"), std::string::npos);
  tracer.clear();
}

TEST(TracerTest, TraceContextTagsSpansAndNests) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.enable();
  {
    obs::TraceContext outer(0x1111);
    { obs::Span s("outer-span", "test"); }
    {
      obs::TraceContext inner(0x2222);
      { obs::Span s("inner-span", "test"); }
    }
    // The inner context restored the outer id on destruction.
    EXPECT_EQ(obs::TraceContext::current(), 0x1111u);
    { obs::Span s("outer-again", "test"); }
  }
  EXPECT_EQ(obs::TraceContext::current(), 0u);
  tracer.disable();
  std::uint64_t outer_tagged = 0, inner_tagged = 0;
  for (const obs::Tracer::SnapshotEvent& ev : tracer.snapshot()) {
    if (ev.ev.trace_id == 0x1111) ++outer_tagged;
    if (ev.ev.trace_id == 0x2222) ++inner_tagged;
  }
  EXPECT_EQ(outer_tagged, 2u);
  EXPECT_EQ(inner_tagged, 1u);
  tracer.clear();
}

TEST(TracerTest, SnapshotTimestampsAlignToTheUnixClock) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.enable();
  const std::int64_t wall_before =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  { obs::Span s("clock-span", "test"); }
  tracer.disable();
  const std::vector<obs::Tracer::SnapshotEvent> events = tracer.snapshot();
  ASSERT_FALSE(events.empty());
  // epoch + offset is how tracedump exports absolute time; it must land
  // within a few seconds of the wall clock read around the span.
  const std::int64_t abs_ns =
      tracer.epoch_unix_ns() + events.back().ev.start_ns;
  EXPECT_GT(abs_ns, wall_before - 5'000'000'000LL);
  EXPECT_LT(abs_ns, wall_before + 5'000'000'000LL);
  tracer.clear();
}

// ---- tracing must not change simulation results ---------------------------

TEST(GoldenDigestTest, AllGoldensBitIdenticalWithTracingAndContextOn) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.enable();
  obs::TraceContext ctx(0x60d60d);  // tag everything, as a served request is
  for (const core::GoldenCase& gc : core::kGoldenCases) {
    const core::CompiledTrace compiled = core::record_compiled(gc.workload);
    core::SimConfig cfg;
    gc.configure(cfg);
    const core::SimResult result = core::simulate(compiled, cfg);
    EXPECT_EQ(core::digest(result), gc.golden)
        << gc.name << " digest changed with tracing enabled";
  }
  tracer.disable();
  tracer.clear();
}

// ---- handler timelines -----------------------------------------------------

TEST(TimelineTest, PredictStampsCompileThenPerPointStages) {
  TempFile trace("tl");
  write_trace(trace.path(), 3, 300);
  server::TraceCache cache(4, 256u << 20);
  obs::Timeline tl;
  const Response r = server::handle_predict(predict_request(trace.path()),
                                            cache, server::Deadline(),
                                            nullptr, &tl);
  ASSERT_EQ(r.status, Status::kOk) << r.error;
  bool saw_compile = false, saw_point = false;
  for (const obs::Stage& s : tl.stages()) {
    if (s.name == "compile") {
      saw_compile = true;
      EXPECT_EQ(s.depth, 0u);
      EXPECT_GE(s.dur_us, 0);
    }
    if (s.name.rfind("cpus=", 0) == 0) {
      saw_point = true;
      EXPECT_EQ(s.depth, 1u);  // nested under the sweep
    }
  }
  EXPECT_TRUE(saw_compile);
  EXPECT_TRUE(saw_point);

  // Second run hits the cache: the lookup is stamped as such.
  obs::Timeline tl2;
  (void)server::handle_predict(predict_request(trace.path()), cache,
                               server::Deadline(), nullptr, &tl2);
  bool saw_lookup = false;
  for (const obs::Stage& s : tl2.stages())
    if (s.name == "cache-lookup") saw_lookup = true;
  EXPECT_TRUE(saw_lookup);
}

// ---- end-to-end: embedded server -------------------------------------------

TEST(ServerTracingTest, TimelineTracedumpAndSloEndToEnd) {
  obs::Tracer::global().clear();
  TempFile sock("srv"), trace("srv_trace");
  write_trace(trace.path(), 3, 400);
  server::ServerOptions so;
  so.unix_path = sock.path();
  so.jobs = 2;
  so.shard_id = 5;
  // An unmeetable latency objective: every request burns, so the
  // breach must surface in stats and health within this test's run.
  so.slo_p99_ms = 0.0001;
  server::Server srv(so);
  srv.start();

  Client client = Client::connect_unix(sock.path());
  Request req = predict_request(trace.path());
  req.trace_id = 0x7777;
  req.sampled = true;
  req.want_timeline = true;
  const auto t0 = std::chrono::steady_clock::now();
  const Response r = client.call(req);
  const std::int64_t elapsed_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_EQ(r.status, Status::kOk) << r.error;
  EXPECT_EQ(r.trace_id, 0x7777u);  // context echoed back
  ASSERT_FALSE(r.timeline.empty());
  std::set<std::string> names;
  std::int64_t depth0_sum = 0;
  for (const server::StageSpan& s : r.timeline) {
    names.insert(s.name);
    if (s.depth == 0 && s.dur_us > 0) depth0_sum += s.dur_us;
  }
  EXPECT_TRUE(names.count("admission"));
  EXPECT_TRUE(names.count("queue"));
  EXPECT_TRUE(names.count("compile"));
  EXPECT_TRUE(names.count("serialize"));
  // The waterfall accounts real time: depth-0 stages sum to within the
  // latency the client measured around the call.
  EXPECT_GT(depth0_sum, 0);
  EXPECT_LE(depth0_sum, elapsed_us);

  // An untraced request must not grow a timeline.
  const Response plain = client.call(predict_request(trace.path()));
  ASSERT_EQ(plain.status, Status::kOk);
  EXPECT_TRUE(plain.timeline.empty());
  EXPECT_EQ(plain.trace_id, 0u);

  Request stats;
  stats.type = ReqType::kStats;
  const Response s = client.call(stats);
  ASSERT_EQ(s.status, Status::kOk);
  EXPECT_GE(s.stats.sampled_requests, 1u);
  EXPECT_DOUBLE_EQ(s.stats.slo_p99_ms, 0.0001);
  EXPECT_GT(s.stats.lat_burn_5m, obs::SloTracker::kFastBurn);
  EXPECT_TRUE(s.slo_burning);

  Request health;
  health.type = ReqType::kHealth;
  const Response h = client.call(health);
  ASSERT_EQ(h.status, Status::kOk);
  EXPECT_TRUE(h.slo_burning);

  Request dump;
  dump.type = ReqType::kTraceDump;
  const Response d = client.call(dump);
  ASSERT_EQ(d.status, Status::kOk);
  ASSERT_FALSE(d.spans.empty());
  const std::int64_t wall_now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  bool tagged = false;
  for (const server::WireSpan& w : d.spans) {
    EXPECT_EQ(w.pid, 5u);  // the shard's own lane
    EXPECT_GT(w.start_unix_ns, wall_now - 3600LL * 1'000'000'000LL);
    EXPECT_LT(w.start_unix_ns, wall_now + 1'000'000'000LL);
    if (w.trace_id == 0x7777) tagged = true;
  }
  EXPECT_TRUE(tagged) << "no ring span carried the propagated trace id";

  srv.stop();
  obs::Tracer::global().clear();
}

// ---- end-to-end: proxy over two shards -------------------------------------

TEST(ProxyTracingTest, ClusterTimelineNestsAndTraceCollectMergesProcesses) {
  obs::Tracer::global().clear();
  TempFile sock_a("shard_a"), sock_b("shard_b"), sock_p("proxy");
  server::ServerOptions sa;
  sa.unix_path = sock_a.path();
  sa.jobs = 2;
  sa.shard_id = 1;
  server::ServerOptions sb = sa;
  sb.unix_path = sock_b.path();
  sb.shard_id = 2;
  server::Server shard_a(sa), shard_b(sb);
  shard_a.start();
  shard_b.start();
  cluster::ProxyOptions popt;
  popt.unix_path = sock_p.path();
  popt.shards.push_back(cluster::ShardEndpoint::parse(1, sock_a.path()));
  popt.shards.push_back(cluster::ShardEndpoint::parse(2, sock_b.path()));
  cluster::Proxy proxy(popt);
  proxy.start();

  // NOTE on process identity: both "shards" share this test process, so
  // they share one global tracer whose tracedump stamps the serving
  // shard's id.  Distinct pid lanes per shard are still exercised —
  // each shard answers its own tracedump fan-out with its own id — but
  // the per-process ring separation itself is only real in the forked
  // cluster (covered by the CLI smoke path).
  Client client = Client::connect_unix(sock_p.path());
  std::set<std::uint64_t> shards_seen;
  for (int i = 0; i < 8 && shards_seen.size() < 2; ++i) {
    TempFile trace("route");
    write_trace(trace.path(), 2 + i % 3, 200 + 40 * i);
    Request req = predict_request(trace.path());
    req.trace_id = 0xbeef;  // one distributed trace spanning both shards
    req.sampled = true;
    req.want_timeline = true;
    const Response r = client.call(req);
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_EQ(r.trace_id, 0xbeefu);
    shards_seen.insert(r.shard_id);

    // The proxy's waterfall: its own depth-0 route/forward stages with
    // the shard's stages nested one deeper, so depth-0 never
    // double-counts the forwarded time.
    ASSERT_FALSE(r.timeline.empty());
    bool saw_route = false, saw_forward = false, saw_nested = false;
    for (const server::StageSpan& s : r.timeline) {
      if (s.name == "route") saw_route = true;
      if (s.name.rfind("forward shard=", 0) == 0) {
        saw_forward = true;
        EXPECT_EQ(s.depth, 0u);
      }
      if (s.depth >= 1) saw_nested = true;
    }
    EXPECT_TRUE(saw_route);
    EXPECT_TRUE(saw_forward);
    EXPECT_TRUE(saw_nested);
  }
  ASSERT_EQ(shards_seen.size(), 2u)
      << "8 distinct traces never split across 2 shards";

  Request dump;
  dump.type = ReqType::kTraceDump;
  const Response d = client.call(dump);
  ASSERT_EQ(d.status, Status::kOk);
  std::set<std::uint64_t> pids_all, pids_traced;
  for (const server::WireSpan& w : d.spans) {
    pids_all.insert(w.pid);
    if (w.trace_id == 0xbeef) pids_traced.insert(w.pid);
  }
  // The merged dump covers the proxy's lane (0) plus both shards, and
  // the one trace id stitches the proxy and at least two distinct
  // shard lanes together.
  EXPECT_TRUE(pids_all.count(0)) << "proxy spans missing from the merge";
  EXPECT_TRUE(pids_all.count(1));
  EXPECT_TRUE(pids_all.count(2));
  EXPECT_TRUE(pids_traced.count(0));
  std::size_t traced_shards = 0;
  for (const std::uint64_t pid : pids_traced)
    if (pid != 0) ++traced_shards;
  EXPECT_GE(traced_shards, 2u);

  Request stats;
  stats.type = ReqType::kStats;
  const Response s = client.call(stats);
  ASSERT_EQ(s.status, Status::kOk);
  EXPECT_GE(s.stats.sampled_requests, 2u);

  proxy.stop();
  shard_a.stop();
  shard_b.stop();
  obs::Tracer::global().clear();
}

TEST(ProxyTracingTest, ProxySloMergesTheStrictestObjective) {
  server::StatsBody a, b;
  a.slo_p99_ms = 50.0;
  a.slo_availability = 0.99;
  a.lat_burn_5m = 2.0;
  b.slo_p99_ms = 20.0;  // stricter latency bound
  b.slo_availability = 0.999;
  b.lat_burn_5m = 9.0;
  b.sampled_requests = 3;
  b.trace_dropped = 1;
  server::StatsBody merged;
  cluster::merge_stats(merged, a);
  cluster::merge_stats(merged, b);
  EXPECT_DOUBLE_EQ(merged.slo_p99_ms, 20.0);       // min nonzero
  EXPECT_DOUBLE_EQ(merged.slo_availability, 0.999);  // max
  EXPECT_DOUBLE_EQ(merged.lat_burn_5m, 9.0);       // worst burn wins
  EXPECT_EQ(merged.sampled_requests, 3u);
  EXPECT_EQ(merged.trace_dropped, 1u);
}

}  // namespace
}  // namespace vppb
