// The pinned golden workloads, shared by the determinism suite (which
// proves scheduler rewrites bit-identical) and the guard suite (which
// proves an attached-but-unlimited RunGuard changes nothing).  The
// digests were captured from the original sort-per-step scheduler; if
// an intentional semantic change ever invalidates them, re-capture by
// running test_determinism and copying the "actual" values it prints.
#pragma once

#include <cstdint>
#include <functional>

#include "core/compiler.hpp"
#include "core/config.hpp"
#include "core/engine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "util/time.hpp"
#include "workloads/splash.hpp"
#include "workloads/synthetic.hpp"

namespace vppb::core {

inline CompiledTrace record_compiled(const std::function<void()>& fn) {
  sol::Program program;
  return compile(rec::record_program(program, fn));
}

struct GoldenCase {
  const char* name;
  std::function<void()> workload;
  std::function<void(SimConfig&)> configure;
  std::uint64_t golden;
};

// clang-format off
inline const GoldenCase kGoldenCases[] = {
    {"fft8_cpus4",
     [] { workloads::fft(workloads::SplashParams{8, 0.2}); },
     [](SimConfig& c) { c.hw.cpus = 4; },
     0xd0b58a60b47736cd},
    {"fft8_cpus1",
     [] { workloads::fft(workloads::SplashParams{8, 0.2}); },
     [](SimConfig& c) { c.hw.cpus = 1; },
     0xca002eec407fa7b1},
    {"ocean4_cpus2",
     [] { workloads::ocean(workloads::SplashParams{4, 0.1}); },
     [](SimConfig& c) { c.hw.cpus = 2; },
     0x597dae827327fc1e},
    {"radix4_cpus4_lwps2",
     [] { workloads::radix(workloads::SplashParams{4, 0.15}); },
     [](SimConfig& c) {
       c.hw.cpus = 4;
       c.sched.lwps = 2;
     },
     0x34930723ef731109},
    {"lu4_cpus8_static_ts",
     [] { workloads::lu(workloads::SplashParams{4, 0.1}); },
     [](SimConfig& c) {
       c.hw.cpus = 8;
       c.sched.ts_dynamics = false;
     },
     0x686ab0ed0edbcd2b},
    {"water4_cpus3_costs",
     [] { workloads::water_spatial(workloads::SplashParams{4, 0.1}); },
     [](SimConfig& c) {
       c.hw.cpus = 3;
       c.hw.comm_delay = SimTime::micros(5);
       c.hw.migration_penalty = SimTime::micros(2);
       c.cost.context_switch_cost = SimTime::micros(1);
     },
     0x79b735c99969553e},
    {"fork_join6_cpus4_lwps3",
     [] { workloads::fork_join(6, SimTime::millis(2)); },
     [](SimConfig& c) {
       c.hw.cpus = 4;
       c.sched.lwps = 3;
     },
     0x469a84b0a31d7529},
    {"pipeline4_cpus2",
     [] { workloads::pipeline(4, 12, SimTime::micros(500)); },
     [](SimConfig& c) { c.hw.cpus = 2; },
     0x48a970bff1c73ad2},
    {"readers_writer_cpus4",
     [] {
       workloads::readers_writer(4, 6, SimTime::micros(300), 3,
                                 SimTime::micros(800));
     },
     [](SimConfig& c) { c.hw.cpus = 4; },
     0x338f4f3b0e749754},
    {"imbalanced5_cpus2_lwps2",
     [] { workloads::imbalanced(5, SimTime::millis(1), 1.0); },
     [](SimConfig& c) {
       c.hw.cpus = 2;
       c.sched.lwps = 2;
       c.hw.comm_delay = SimTime::micros(1);
     },
     0x7faed9c1ea05d49e},
    {"priority_classes_cpus2",
     [] { workloads::priority_classes(2, 3, SimTime::millis(1)); },
     [](SimConfig& c) { c.hw.cpus = 2; },
     0xa5ba8e73da62c4c7},
    {"fork_join3_policies",
     [] { workloads::fork_join(3, SimTime::millis(1)); },
     [](SimConfig& c) {
       c.hw.cpus = 2;
       ThreadPolicy to_cpu;
       to_cpu.override_binding = true;
       to_cpu.binding = Binding::kBoundCpu;
       to_cpu.cpu = 1;
       c.sched.thread_policy[2] = to_cpu;
       ThreadPolicy to_lwp;
       to_lwp.override_binding = true;
       to_lwp.binding = Binding::kBoundLwp;
       c.sched.thread_policy[3] = to_lwp;
       ThreadPolicy fixed_prio;
       fixed_prio.override_priority = true;
       fixed_prio.priority = 5;
       c.sched.thread_policy[4] = fixed_prio;
     },
     0xa5305a520b24c0f1},
};
// clang-format on

}  // namespace vppb::core
