// Unit tests for the Solaris threads API layer: thread management,
// mutexes, semaphores, condition variables, rwlocks, barriers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "util/error.hpp"

namespace vppb::sol {
namespace {

void run(const std::function<void()>& fn) {
  Program program;
  program.run(fn);
}

TEST(ThrCreate, CStyleSignatureAndJoin) {
  static int counter;
  counter = 0;
  run([]() {
    StartRoutine worker = [](void* arg) -> void* {
      ++counter;
      return static_cast<char*>(arg) + 1;
    };
    thread_t tid = 0;
    ASSERT_EQ(thr_create(nullptr, 0, worker, nullptr, 0, &tid), SOL_OK);
    EXPECT_EQ(tid, 4);
    void* status = nullptr;
    thread_t departed = 0;
    ASSERT_EQ(thr_join(tid, &departed, &status), SOL_OK);
    EXPECT_EQ(departed, tid);
    EXPECT_EQ(status, reinterpret_cast<void*>(1));
    EXPECT_EQ(counter, 1);
  });
}

TEST(ThrCreate, ReturnValuePassedThroughThrExit) {
  run([]() {
    thread_t tid = 0;
    thr_create_fn([]() -> void* { thr_exit(reinterpret_cast<void*>(42)); },
                  0, &tid);
    void* status = nullptr;
    ASSERT_EQ(thr_join(tid, nullptr, &status), SOL_OK);
    EXPECT_EQ(status, reinterpret_cast<void*>(42));
  });
}

TEST(ThrJoin, SelfJoinIsDeadlock) {
  run([]() { EXPECT_EQ(thr_join(thr_self(), nullptr, nullptr), SOL_EDEADLK); });
}

TEST(ThrJoin, UnknownAndDoubleJoin) {
  run([]() {
    EXPECT_EQ(thr_join(999, nullptr, nullptr), SOL_ESRCH);
    thread_t tid = 0;
    thr_create_fn([]() -> void* { return nullptr; }, 0, &tid);
    EXPECT_EQ(thr_join(tid, nullptr, nullptr), SOL_OK);
    EXPECT_EQ(thr_join(tid, nullptr, nullptr), SOL_ESRCH);
  });
}

TEST(ThrJoin, DetachedThreadNotJoinable) {
  run([]() {
    thread_t tid = 0;
    thr_create_fn([]() -> void* { return nullptr; }, THR_DETACHED, &tid);
    EXPECT_EQ(thr_join(tid, nullptr, nullptr), SOL_ESRCH);
    thr_yield();  // let it finish
  });
}

TEST(ThrJoin, WildcardJoinsAnyExitedThread) {
  run([]() {
    thread_t a = 0, b = 0;
    thr_create_fn([]() -> void* { return nullptr; }, 0, &a);
    thr_create_fn([]() -> void* { return nullptr; }, 0, &b);
    thread_t first = 0, second = 0;
    ASSERT_EQ(thr_join(0, &first, nullptr), SOL_OK);
    ASSERT_EQ(thr_join(0, &second, nullptr), SOL_OK);
    EXPECT_TRUE((first == a && second == b) || (first == b && second == a));
    EXPECT_EQ(thr_join(0, nullptr, nullptr), SOL_ESRCH);
  });
}

TEST(ThrPrio, SetAndGet) {
  run([]() {
    thread_t self = thr_self();
    EXPECT_EQ(thr_setprio(self, 7), SOL_OK);
    int prio = -1;
    EXPECT_EQ(thr_getprio(self, &prio), SOL_OK);
    EXPECT_EQ(prio, 7);
    EXPECT_EQ(thr_setprio(self, 999), SOL_EINVAL);
    EXPECT_EQ(thr_setprio(999, 1), SOL_ESRCH);
  });
}

TEST(ThrConcurrency, RecordedButHarmless) {
  run([]() {
    EXPECT_EQ(thr_setconcurrency(8), SOL_OK);
    EXPECT_EQ(thr_getconcurrency(), 8);
    EXPECT_EQ(thr_setconcurrency(-1), SOL_EINVAL);
  });
}

TEST(MutexTest, MutualExclusionUnderContention) {
  run([]() {
    Mutex m;
    int inside = 0;
    int max_inside = 0;
    int done = 0;
    for (int i = 0; i < 8; ++i) {
      thr_create_fn(
          [&]() -> void* {
            for (int k = 0; k < 10; ++k) {
              ScopedLock lock(m);
              ++inside;
              max_inside = std::max(max_inside, inside);
              compute(SimTime::micros(3));
              --inside;
            }
            ++done;
            return nullptr;
          },
          0, nullptr);
    }
    join_all();
    EXPECT_EQ(done, 8);
    EXPECT_EQ(max_inside, 1);
  });
}

TEST(MutexTest, TrylockOutcomes) {
  run([]() {
    Mutex m;
    EXPECT_TRUE(m.try_lock());
    thr_create_fn(
        [&]() -> void* {
          EXPECT_FALSE(m.try_lock());  // held by main
          return nullptr;
        },
        0, nullptr);
    join_all();
    m.unlock();
    EXPECT_TRUE(m.try_lock());
    m.unlock();
  });
}

TEST(MutexTest, UnlockByNonOwnerIsError) {
  run([]() {
    Mutex m;
    m.lock();
    thr_create_fn(
        [&]() -> void* {
          EXPECT_THROW(m.unlock(), vppb::Error);
          return nullptr;
        },
        0, nullptr);
    join_all();
    m.unlock();
  });
}

TEST(MutexTest, HandoffIsFifo) {
  run([]() {
    Mutex m;
    std::string order;
    m.lock();
    for (char c : {'a', 'b', 'c'}) {
      thr_create_fn(
          [&m, &order, c]() -> void* {
            ScopedLock lock(m);
            order += c;
            return nullptr;
          },
          0, nullptr);
    }
    thr_yield();  // all three block on the mutex in creation order
    m.unlock();
    join_all();
    EXPECT_EQ(order, "abc");
  });
}

TEST(SemaTest, CountingBehaviour) {
  run([]() {
    Semaphore s(2);
    EXPECT_TRUE(s.try_wait());
    EXPECT_TRUE(s.try_wait());
    EXPECT_FALSE(s.try_wait());
    s.post();
    EXPECT_TRUE(s.try_wait());
  });
}

TEST(SemaTest, PostWakesBlockedWaiter) {
  run([]() {
    Semaphore s(0);
    std::string order;
    thr_create_fn(
        [&]() -> void* {
          s.wait();
          order += 'w';
          return nullptr;
        },
        0, nullptr);
    thr_yield();
    order += 'p';
    s.post();
    join_all();
    EXPECT_EQ(order, "pw");
  });
}

TEST(SemaTest, ProducerConsumerConserved) {
  run([]() {
    Semaphore items(0);
    Mutex m;
    int produced = 0, consumed = 0;
    for (int i = 0; i < 4; ++i) {
      thr_create_fn(
          [&]() -> void* {
            for (int k = 0; k < 25; ++k) {
              {
                ScopedLock lock(m);
                ++produced;
              }
              items.post();
            }
            return nullptr;
          },
          0, nullptr);
    }
    for (int i = 0; i < 100; ++i) {
      items.wait();
      ScopedLock lock(m);
      ++consumed;
    }
    join_all();
    EXPECT_EQ(produced, 100);
    EXPECT_EQ(consumed, 100);
  });
}

TEST(CondTest, WaitAndSignal) {
  run([]() {
    Mutex m;
    CondVar c;
    bool ready = false;
    thr_create_fn(
        [&]() -> void* {
          ScopedLock lock(m);
          ready = true;
          c.signal();
          return nullptr;
        },
        0, nullptr);
    m.lock();
    while (!ready) c.wait(m);
    m.unlock();
    join_all();
    EXPECT_TRUE(ready);
  });
}

TEST(CondTest, TimedWaitTimesOut) {
  run([]() {
    Mutex m;
    CondVar c;
    m.lock();
    const bool woken = c.timed_wait(m, SimTime::millis(3));
    EXPECT_FALSE(woken);
    EXPECT_EQ(ult::Runtime::current().now(), SimTime::millis(3));
    m.unlock();
  });
}

TEST(CondTest, BroadcastReleasesAllWaiters) {
  run([]() {
    Mutex m;
    CondVar c;
    int released = 0;
    bool go = false;
    for (int i = 0; i < 5; ++i) {
      thr_create_fn(
          [&]() -> void* {
            ScopedLock lock(m);
            while (!go) c.wait(m);
            ++released;
            return nullptr;
          },
          0, nullptr);
    }
    thr_yield();
    {
      ScopedLock lock(m);
      go = true;
      c.broadcast();
    }
    join_all();
    EXPECT_EQ(released, 5);
  });
}

TEST(CondTest, WaitWithoutMutexHeldIsError) {
  run([]() {
    Mutex m;
    CondVar c;
    EXPECT_THROW(c.wait(m), vppb::Error);
  });
}

TEST(RwLockTest, ReadersShareWritersExclude) {
  run([]() {
    RwLock rw;
    int readers_inside = 0, max_readers = 0;
    bool writer_inside = false;
    for (int i = 0; i < 4; ++i) {
      thr_create_fn(
          [&]() -> void* {
            rw.rdlock();
            ++readers_inside;
            max_readers = std::max(max_readers, readers_inside);
            EXPECT_FALSE(writer_inside);
            thr_yield();
            --readers_inside;
            rw.unlock();
            return nullptr;
          },
          0, nullptr);
    }
    thr_create_fn(
        [&]() -> void* {
          rw.wrlock();
          writer_inside = true;
          EXPECT_EQ(readers_inside, 0);
          thr_yield();
          writer_inside = false;
          rw.unlock();
          return nullptr;
        },
        0, nullptr);
    join_all();
    EXPECT_GE(max_readers, 2);
  });
}

TEST(RwLockTest, WriterPreferenceBlocksNewReaders) {
  run([]() {
    RwLock rw;
    std::string order;
    rw.rdlock();  // main holds a read lock
    thr_create_fn(
        [&]() -> void* {
          rw.wrlock();
          order += 'w';
          rw.unlock();
          return nullptr;
        },
        0, nullptr);
    thr_yield();  // writer is now queued
    thr_create_fn(
        [&]() -> void* {
          rw.rdlock();  // must queue behind the waiting writer
          order += 'r';
          rw.unlock();
          return nullptr;
        },
        0, nullptr);
    thr_yield();
    rw.unlock();  // last reader out; writer goes first
    join_all();
    EXPECT_EQ(order, "wr");
  });
}

TEST(RwLockTest, TryVariants) {
  run([]() {
    RwLock rw;
    EXPECT_EQ(rw_tryrdlock(rw.raw()), SOL_OK);
    EXPECT_EQ(rw_trywrlock(rw.raw()), SOL_EBUSY);
    rw.unlock();
    EXPECT_EQ(rw_trywrlock(rw.raw()), SOL_OK);
    EXPECT_EQ(rw_tryrdlock(rw.raw()), SOL_EBUSY);
    rw.unlock();
  });
}

TEST(BarrierTest, AllPartiesLeaveTogether) {
  run([]() {
    Barrier barrier(4);
    int before = 0, after = 0;
    for (int i = 0; i < 3; ++i) {
      thr_create_fn(
          [&]() -> void* {
            ++before;
            barrier.arrive();
            ++after;
            return nullptr;
          },
          0, nullptr);
    }
    thr_yield();
    EXPECT_EQ(before, 3);
    EXPECT_EQ(after, 0) << "nobody may pass until the last party arrives";
    barrier.arrive();
    join_all();
    EXPECT_EQ(after, 3);
  });
}

TEST(BarrierTest, ReusableAcrossGenerations) {
  run([]() {
    Barrier barrier(2);
    int phase_sum = 0;
    thr_create_fn(
        [&]() -> void* {
          for (int p = 0; p < 5; ++p) {
            barrier.arrive();
            ++phase_sum;
            barrier.arrive();
          }
          return nullptr;
        },
        0, nullptr);
    for (int p = 0; p < 5; ++p) {
      barrier.arrive();
      barrier.arrive();
      EXPECT_EQ(phase_sum, p + 1);
    }
    join_all();
  });
}

TEST(ComputeTest, VirtualModeAdvancesClock) {
  Program program;
  SimTime dur;
  program.run([&]() {
    compute(SimTime::millis(2));
    dur = ult::Runtime::current().now();
  });
  EXPECT_EQ(dur, SimTime::millis(2));
  EXPECT_EQ(program.last_duration(), SimTime::millis(2));
}

TEST(ProgramTest, DeterministicDuration) {
  auto workload = []() {
    Mutex m;
    for (int i = 0; i < 4; ++i) {
      thr_create_fn(
          [&m]() -> void* {
            for (int k = 0; k < 5; ++k) {
              compute(SimTime::micros(10));
              ScopedLock lock(m);
              compute(SimTime::micros(2));
            }
            return nullptr;
          },
          0, nullptr);
    }
    join_all();
  };
  Program p1, p2;
  p1.run(workload);
  p2.run(workload);
  EXPECT_EQ(p1.last_duration(), p2.last_duration());
  EXPECT_GT(p1.last_duration(), SimTime::zero());
}

TEST(ProgramTest, RegisterStartRoutineName) {
  StartRoutine fn = [](void*) -> void* { return nullptr; };
  register_start_routine(fn, "my_worker");
  run([fn]() {
    thread_t tid = 0;
    thr_create(nullptr, 0, fn, nullptr, 0, &tid);
    join_all();
  });
  SUCCEED();  // name plumbing is asserted via the recorder tests
}

}  // namespace
}  // namespace vppb::sol
