// Tests for the observability layer: the sharded metrics registry, the
// span tracer and its Chrome-trace export, the structured logger, the
// env helpers — and the properties the rest of the tree relies on:
// percentile_nth matching the sort-based percentile, the server latency
// ring surviving wrap-around, and simulation digests being bit-identical
// with tracing on or off.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/compiler.hpp"
#include "core/config.hpp"
#include "core/engine.hpp"
#include "core/result.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "recorder/recorder.hpp"
#include "server/metrics.hpp"
#include "server/stats_text.hpp"
#include "solaris/program.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "workloads/synthetic.hpp"

namespace vppb {
namespace {

// ---- metrics registry ----------------------------------------------------

TEST(Counter, ShardedIncrementsSumExactly) {
  obs::Counter c("test_sharded_total", "sharded increments");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&c]() {
      for (std::uint64_t n = 0; n < kPerThread; ++n) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Registry, ReRegistrationReturnsTheSameMetric) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("dup_total", "first");
  obs::Counter& b = reg.counter("dup_total", "second help ignored");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Gauge, SetAddSub) {
  obs::Gauge g("test_gauge", "");
  g.set(10);
  g.add(5);
  g.sub(7);
  EXPECT_EQ(g.value(), 8);
  g.set(-2);
  EXPECT_EQ(g.value(), -2);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  obs::Histogram h("test_hist", "", {1.0, 2.0, 5.0});
  for (double v : {0.5, 1.0, 1.5, 2.0, 5.0, 6.0}) h.observe(v);
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_EQ(h.bucket_count(0), 2u);  // 0.5, 1.0 (edge is inclusive)
  EXPECT_EQ(h.bucket_count(1), 2u);  // 1.5, 2.0
  EXPECT_EQ(h.bucket_count(2), 1u);  // 5.0
  EXPECT_EQ(h.bucket_count(3), 1u);  // 6.0 -> +Inf
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 16.0);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(obs::Histogram("bad", "", {2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram("bad", "", {1.0, 1.0}), std::invalid_argument);
}

TEST(Registry, PrometheusTextExposition) {
  obs::Registry reg;
  reg.counter("t_requests_total", "Requests").inc(7);
  reg.gauge("t_depth", "Depth").set(3);
  obs::Histogram& h = reg.histogram("t_lat_us", "Latency", {10.0, 100.0});
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# HELP t_requests_total Requests\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE t_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("t_requests_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("t_depth 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_lat_us histogram\n"), std::string::npos);
  // Cumulative buckets: le="100" counts everything <= 100.
  EXPECT_NE(text.find("t_lat_us_bucket{le=\"10\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("t_lat_us_bucket{le=\"100\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("t_lat_us_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("t_lat_us_sum 555\n"), std::string::npos);
  EXPECT_NE(text.find("t_lat_us_count 3\n"), std::string::npos);
}

TEST(Registry, PoolInstrumentationReachesTheGlobalRegistry) {
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) pool.post([]() {});
    // ~ThreadPool drains the queue before joining.
  }
  const std::string text = obs::Registry::global().prometheus_text();
  EXPECT_NE(text.find("vppb_pool_tasks_total"), std::string::npos);
  EXPECT_NE(text.find("vppb_pool_task_wait_us"), std::string::npos);
  EXPECT_NE(text.find("vppb_pool_task_run_us"), std::string::npos);
  EXPECT_NE(text.find("vppb_pool_queue_depth"), std::string::npos);
}

// ---- percentiles ---------------------------------------------------------

TEST(Stats, PercentileNthMatchesSortBased) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(0, 400));
    std::vector<double> xs(n);
    for (double& x : xs) x = rng.uniform(0, 10000) / 7.0;
    for (double p : {0.0, 17.5, 50.0, 90.0, 99.0, 100.0}) {
      std::vector<double> scratch = xs;
      EXPECT_DOUBLE_EQ(percentile_nth(scratch, p), percentile(xs, p))
          << "n=" << n << " p=" << p;
    }
  }
}

TEST(ServerMetrics, LatencyRingWrapAroundKeepsRecentSamples) {
  server::Metrics m;
  // Fill the ring with slow samples, then overwrite every slot with
  // fast ones: the percentiles must describe the recent window only.
  for (std::size_t i = 0; i < server::Metrics::kMaxSamples; ++i)
    m.record_latency_us(1000.0);
  for (std::size_t i = 0; i < server::Metrics::kMaxSamples; ++i)
    m.record_latency_us(10.0);
  server::StatsBody s;
  m.snapshot(s);
  EXPECT_EQ(s.latency_count, 2 * server::Metrics::kMaxSamples);
  EXPECT_DOUBLE_EQ(s.p50_us, 10.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 10.0);
  EXPECT_DOUBLE_EQ(s.max_us, 10.0);  // max is over the ring, not all time
}

TEST(ServerMetrics, StatsTextSurfacesFailureCountersAndHitRate) {
  server::StatsBody s;
  s.requests = 10;
  s.errors = 2;
  s.overloads = 3;
  s.deadlines = 4;
  s.cache_hits = 3;
  s.cache_misses = 1;
  const std::string text = server::render_stats_text(s);
  EXPECT_NE(text.find("errors"), std::string::npos);
  EXPECT_NE(text.find("overloads"), std::string::npos);
  EXPECT_NE(text.find("deadline misses"), std::string::npos);
  EXPECT_NE(text.find("metricsdump"), std::string::npos);
  EXPECT_NE(text.find("cache hit rate: 75.0%"), std::string::npos);
}

// ---- span tracer ---------------------------------------------------------

/// Minimal JSON scanner: verifies braces/brackets balance outside of
/// strings and counts occurrences of `"key":"value"` pairs.  Enough to
/// prove the export is structurally valid JSON without a parser dep.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

std::size_t count_occurrences(const std::string& s, const std::string& pat) {
  std::size_t n = 0;
  for (std::size_t pos = s.find(pat); pos != std::string::npos;
       pos = s.find(pat, pos + pat.size()))
    ++n;
  return n;
}

TEST(Tracer, SpanNestingAndExportRoundTrip) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.enable();
  {
    obs::Span outer("outer", "test");
    outer.arg("items", 42);
    {
      obs::Span inner("inner", "test");
    }
    obs::instant("marker", "test", "value", 7);
  }
  tracer.disable();
  EXPECT_EQ(tracer.event_count(), 3u);
  const std::string json = tracer.chrome_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"marker\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"i\""), 1u);
  EXPECT_NE(json.find("\"items\":42"), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
  tracer.clear();
}

TEST(Tracer, DisabledSpansRecordNothing) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.disable();
  {
    obs::Span s("invisible", "test");
    s.arg("x", 1);
    obs::instant("also-invisible", "test");
  }
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.chrome_json().find("invisible"), std::string::npos);
}

TEST(Tracer, WriteChromeJsonRoundTripsThroughAFile) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.enable();
  { obs::Span s("file-span", "test"); }
  tracer.disable();
  const std::string path =
      (std::filesystem::temp_directory_path() / "vppb_obs_test.json").string();
  tracer.write_chrome_json(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), tracer.chrome_json());
  EXPECT_NE(buf.str().find("file-span"), std::string::npos);
  std::filesystem::remove(path);
  tracer.clear();
}

// ---- tracing must not change simulation results --------------------------

TEST(Tracer, SimulationDigestsAreIdenticalWithTracingOnAndOff) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {
    workloads::fork_join(4, SimTime::millis(2));
  });
  const core::CompiledTrace compiled = core::compile(t);
  core::SimConfig cfg;
  cfg.hw.cpus = 4;

  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.disable();
  const core::SimResult off = core::simulate(compiled, cfg);

  tracer.enable();
  const core::SimResult on = core::simulate(compiled, cfg);
  tracer.disable();

  EXPECT_EQ(core::digest(off), core::digest(on));
  EXPECT_GT(on.engine.steps, 0u);
  EXPECT_EQ(off.engine.steps, on.engine.steps);
  EXPECT_EQ(off.engine.dispatches, on.engine.dispatches);
  EXPECT_EQ(off.engine.preemptions, on.engine.preemptions);
  EXPECT_EQ(off.engine.migrations, on.engine.migrations);
  EXPECT_GT(tracer.event_count(), 0u);  // the traced run left spans
  tracer.clear();
}

// ---- env helpers ---------------------------------------------------------

TEST(Env, RawOrAndSet) {
  ::unsetenv("VPPB_TEST_ENV");
  EXPECT_EQ(util::env_raw("VPPB_TEST_ENV"), nullptr);
  EXPECT_EQ(util::env_or("VPPB_TEST_ENV", "fallback"), "fallback");
  EXPECT_FALSE(util::env_set("VPPB_TEST_ENV"));
  ::setenv("VPPB_TEST_ENV", "", 1);
  EXPECT_EQ(util::env_or("VPPB_TEST_ENV", "fallback"), "");
  EXPECT_FALSE(util::env_set("VPPB_TEST_ENV"));
  ::setenv("VPPB_TEST_ENV", "value", 1);
  EXPECT_EQ(util::env_or("VPPB_TEST_ENV", "fallback"), "value");
  EXPECT_TRUE(util::env_set("VPPB_TEST_ENV"));
  ::unsetenv("VPPB_TEST_ENV");
}

// ---- structured logger ---------------------------------------------------

TEST(Log, LevelParsing) {
  obs::LogLevel level;
  EXPECT_TRUE(obs::parse_log_level("trace", &level));
  EXPECT_EQ(level, obs::LogLevel::kTrace);
  EXPECT_TRUE(obs::parse_log_level("warn", &level));
  EXPECT_EQ(level, obs::LogLevel::kWarn);
  EXPECT_TRUE(obs::parse_log_level("off", &level));
  EXPECT_EQ(level, obs::LogLevel::kOff);
  EXPECT_FALSE(obs::parse_log_level("verbose", &level));
  EXPECT_FALSE(obs::parse_log_level("", &level));
}

TEST(Log, SpecParsing) {
  obs::LogSpec spec;
  EXPECT_TRUE(obs::parse_log_spec("debug", &spec));
  EXPECT_EQ(spec.level, obs::LogLevel::kDebug);
  EXPECT_FALSE(spec.json);
  EXPECT_TRUE(obs::parse_log_spec("info:json", &spec));
  EXPECT_EQ(spec.level, obs::LogLevel::kInfo);
  EXPECT_TRUE(spec.json);
  EXPECT_TRUE(obs::parse_log_spec("error:text", &spec));
  EXPECT_FALSE(spec.json);
  obs::LogSpec untouched;
  untouched.level = obs::LogLevel::kWarn;
  EXPECT_FALSE(obs::parse_log_spec("info:yaml", &untouched));
  EXPECT_EQ(untouched.level, obs::LogLevel::kWarn);
  EXPECT_FALSE(obs::parse_log_spec("loud", &untouched));
}

TEST(Log, JsonSinkEscapesAndLevelsFilter) {
  obs::Logger& log = obs::Logger::global();
  const obs::LogLevel saved_level = log.level();
  const bool saved_json = log.json();

  std::vector<std::string> lines;
  log.set_sink([&lines](std::string_view line) {
    lines.emplace_back(line);
  });
  log.set_level(obs::LogLevel::kInfo);
  log.set_json(true);

  obs::logf(obs::LogLevel::kDebug, "test", "filtered out");
  obs::logf(obs::LogLevel::kInfo, "test", "quote \" and\nnewline");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(json_balanced(lines[0])) << lines[0];
  EXPECT_NE(lines[0].find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"component\":\"test\""), std::string::npos);
  EXPECT_NE(lines[0].find("quote \\\" and\\nnewline"), std::string::npos);

  log.set_json(false);
  obs::logf(obs::LogLevel::kError, "test", "plain %d", 7);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("error"), std::string::npos);
  EXPECT_NE(lines[1].find("test: plain 7"), std::string::npos);

  log.set_sink({});  // restore stderr
  log.set_level(saved_level);
  log.set_json(saved_json);
}

}  // namespace
}  // namespace vppb
