// Tests for the compact binary trace format.
#include <gtest/gtest.h>

#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "trace/binary.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"
#include "workloads/prodcons.hpp"
#include "workloads/splash.hpp"

namespace vppb::trace {
namespace {

Trace sample_trace() {
  workloads::ProdConsParams p;
  p.producers = 10;
  p.consumers = 5;
  sol::Program program;
  return rec::record_program(program,
                             [&p]() { workloads::prodcons_tuned(p); });
}

TEST(BinaryTrace, RoundTripIsExact) {
  const Trace t = sample_trace();
  const Trace back = from_binary(to_binary(t));
  ASSERT_EQ(back.records.size(), t.records.size());
  // The text rendering is the canonical equality check: identical text
  // means identical semantic content.
  EXPECT_EQ(to_text(back), to_text(t));
}

TEST(BinaryTrace, SubstantiallySmallerThanText) {
  const Trace t = sample_trace();
  const std::size_t text_size = to_text(t).size();
  const std::size_t bin_size = to_binary(t).size();
  EXPECT_LT(bin_size * 3, text_size)
      << "binary " << bin_size << " vs text " << text_size;
}

TEST(BinaryTrace, FileRoundTripAndSniffing) {
  const Trace t = sample_trace();
  const std::string bin_path = testing::TempDir() + "/vppb_bin.trace";
  const std::string txt_path = testing::TempDir() + "/vppb_txt.trace";
  save_binary_file(t, bin_path);
  save_file(t, txt_path);
  // load_any_file accepts both formats transparently.
  EXPECT_EQ(to_text(load_any_file(bin_path)), to_text(t));
  EXPECT_EQ(to_text(load_any_file(txt_path)), to_text(t));
  EXPECT_EQ(to_text(load_binary_file(bin_path)), to_text(t));
  EXPECT_THROW(load_binary_file(txt_path), Error);
}

TEST(BinaryTrace, RejectsCorruption) {
  const Trace t = sample_trace();
  std::vector<std::uint8_t> bytes = to_binary(t);
  // Bad magic.
  {
    auto bad = bytes;
    bad[0] = 'X';
    EXPECT_THROW(from_binary(bad), Error);
  }
  // Bad version.
  {
    auto bad = bytes;
    bad[4] = 99;
    EXPECT_THROW(from_binary(bad), Error);
  }
  // Truncations at various points must throw, never crash or misparse.
  for (std::size_t cut : {bytes.size() / 4, bytes.size() / 2,
                          bytes.size() - 3}) {
    EXPECT_THROW(from_binary(bytes.data(), cut), Error) << cut;
  }
  // Trailing garbage.
  {
    auto bad = bytes;
    bad.push_back(0x01);
    EXPECT_THROW(from_binary(bad), Error);
  }
}

TEST(BinaryTrace, EmptyTraceRoundTrips) {
  Trace t;
  const Trace back = from_binary(to_binary(t));
  EXPECT_TRUE(back.records.empty());
  EXPECT_TRUE(back.threads.empty());
}

TEST(BinaryTrace, LargeTimestampsSurvive) {
  Trace t;
  t.upsert_thread(1);
  Record r;
  r.tid = 1;
  r.op = Op::kStartCollect;
  r.at = SimTime::seconds(86400.0 * 365);  // a year of nanoseconds
  t.records.push_back(r);
  const Trace back = from_binary(to_binary(t));
  EXPECT_EQ(back.records.at(0).at, r.at);
}

TEST(BinaryTrace, SplashLogCompressionRatioReported) {
  sol::Program program;
  const Trace t = rec::record_program(program, []() {
    workloads::ocean(workloads::SplashParams{8, 0.05});
  });
  const double ratio = static_cast<double>(to_text(t).size()) /
                       static_cast<double>(to_binary(t).size());
  EXPECT_GT(ratio, 3.0) << "varint+delta encoding should win >3x";
}

}  // namespace
}  // namespace vppb::trace
