// Tests for the processor-sweep and Amdahl-fit analysis.
#include <gtest/gtest.h>

#include "core/sweep.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "util/error.hpp"
#include "workloads/splash.hpp"
#include "workloads/synthetic.hpp"

namespace vppb::core {
namespace {

CompiledTrace record_compiled(const std::function<void()>& fn) {
  sol::Program program;
  return compile(rec::record_program(program, fn));
}

const int kCpus[] = {1, 2, 4, 8};

TEST(SweepTest, PointsSortedAndComplete) {
  const CompiledTrace c = record_compiled([]() {
    workloads::fork_join(8, SimTime::millis(5));
  });
  const int shuffled[] = {8, 1, 4, 2};
  const SpeedupCurve curve = sweep_cpus(c, shuffled, SimConfig{});
  ASSERT_EQ(curve.points().size(), 4u);
  for (std::size_t i = 1; i < curve.points().size(); ++i)
    EXPECT_GT(curve.points()[i].cpus, curve.points()[i - 1].cpus);
  EXPECT_EQ(curve.best().cpus, 8);
}

TEST(SweepTest, FullyParallelHasNearZeroSerialFraction) {
  const CompiledTrace c = record_compiled([]() {
    workloads::fork_join(8, SimTime::millis(20));
  });
  const SpeedupCurve curve = sweep_cpus(c, kCpus, SimConfig{});
  EXPECT_LT(curve.amdahl_serial_fraction(), 0.02);
  EXPECT_EQ(curve.knee(0.9), 8);
}

TEST(SweepTest, ExplicitSerialFractionIsRecovered) {
  // 30% of the work in main, 70% split over 8 workers: the fitted f
  // should land near 0.3.
  const CompiledTrace c = record_compiled([]() {
    sol::compute(SimTime::millis(30));
    workloads::fork_join(8, SimTime::millis(70) / 8);
  });
  const SpeedupCurve curve = sweep_cpus(c, kCpus, SimConfig{});
  EXPECT_NEAR(curve.amdahl_serial_fraction(), 0.30, 0.05);
  // And the fitted curve reproduces the simulated points.
  for (const SweepPoint& p : curve.points()) {
    EXPECT_NEAR(curve.amdahl_speedup(p.cpus), p.speedup, 0.25) << p.cpus;
  }
}

TEST(SweepTest, FftMatchesThePapersAmdahlFraction) {
  // The paper's FFT row (1.55 / 2.14 / 2.62) fits f ~= 0.29; our FFT
  // kernel was built to reproduce it.
  const CompiledTrace c = record_compiled([]() {
    workloads::fft(workloads::SplashParams{8, 0.2});
  });
  const SpeedupCurve curve = sweep_cpus(c, kCpus, SimConfig{});
  EXPECT_NEAR(curve.amdahl_serial_fraction(), 0.29, 0.07);
}

TEST(SweepTest, KneeThresholds) {
  const CompiledTrace c = record_compiled([]() {
    sol::compute(SimTime::millis(30));
    workloads::fork_join(8, SimTime::millis(70) / 8);
  });
  const SpeedupCurve curve = sweep_cpus(c, kCpus, SimConfig{});
  // f = 0.3: efficiency at 2 CPUs ~ 0.77, at 4 ~ 0.53, at 8 ~ 0.32.
  EXPECT_EQ(curve.knee(0.75), 2);
  EXPECT_EQ(curve.knee(0.5), 4);
  EXPECT_EQ(curve.knee(0.99), 1) << "falls back to the smallest count";
}

TEST(SweepTest, RejectsEmptyInput) {
  const CompiledTrace c = record_compiled([]() {
    workloads::fork_join(2, SimTime::millis(1));
  });
  EXPECT_THROW(sweep_cpus(c, {}, SimConfig{}), Error);
  EXPECT_THROW(SpeedupCurve({}), Error);
}

TEST(SweepTest, SinglePointDegenerateFit) {
  const CompiledTrace c = record_compiled([]() {
    sol::compute(SimTime::millis(50));
    workloads::fork_join(4, SimTime::millis(50) / 4);
  });
  const int one[] = {4};
  const SpeedupCurve curve = sweep_cpus(c, one, SimConfig{});
  // S(4) = 1/(0.5 + 0.5/4) = 1.6 -> f = (4/1.6 - 1)/3 = 0.5.
  EXPECT_NEAR(curve.amdahl_serial_fraction(), 0.5, 0.05);
}

}  // namespace
}  // namespace vppb::core
