// Tests for the processor-sweep and Amdahl-fit analysis.
#include <gtest/gtest.h>

#include "core/sweep.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "util/error.hpp"
#include "workloads/splash.hpp"
#include "workloads/synthetic.hpp"

namespace vppb::core {
namespace {

CompiledTrace record_compiled(const std::function<void()>& fn) {
  sol::Program program;
  return compile(rec::record_program(program, fn));
}

const int kCpus[] = {1, 2, 4, 8};

TEST(SweepTest, PointsSortedAndComplete) {
  const CompiledTrace c = record_compiled([]() {
    workloads::fork_join(8, SimTime::millis(5));
  });
  const int shuffled[] = {8, 1, 4, 2};
  const SpeedupCurve curve = sweep_cpus(c, shuffled, SimConfig{});
  ASSERT_EQ(curve.points().size(), 4u);
  for (std::size_t i = 1; i < curve.points().size(); ++i)
    EXPECT_GT(curve.points()[i].cpus, curve.points()[i - 1].cpus);
  EXPECT_EQ(curve.best().cpus, 8);
}

TEST(SweepTest, FullyParallelHasNearZeroSerialFraction) {
  const CompiledTrace c = record_compiled([]() {
    workloads::fork_join(8, SimTime::millis(20));
  });
  const SpeedupCurve curve = sweep_cpus(c, kCpus, SimConfig{});
  EXPECT_LT(curve.amdahl_serial_fraction(), 0.02);
  EXPECT_EQ(curve.knee(0.9), 8);
}

TEST(SweepTest, ExplicitSerialFractionIsRecovered) {
  // 30% of the work in main, 70% split over 8 workers: the fitted f
  // should land near 0.3.
  const CompiledTrace c = record_compiled([]() {
    sol::compute(SimTime::millis(30));
    workloads::fork_join(8, SimTime::millis(70) / 8);
  });
  const SpeedupCurve curve = sweep_cpus(c, kCpus, SimConfig{});
  EXPECT_NEAR(curve.amdahl_serial_fraction(), 0.30, 0.05);
  // And the fitted curve reproduces the simulated points.
  for (const SweepPoint& p : curve.points()) {
    EXPECT_NEAR(curve.amdahl_speedup(p.cpus), p.speedup, 0.25) << p.cpus;
  }
}

TEST(SweepTest, FftMatchesThePapersAmdahlFraction) {
  // The paper's FFT row (1.55 / 2.14 / 2.62) fits f ~= 0.29; our FFT
  // kernel was built to reproduce it.
  const CompiledTrace c = record_compiled([]() {
    workloads::fft(workloads::SplashParams{8, 0.2});
  });
  const SpeedupCurve curve = sweep_cpus(c, kCpus, SimConfig{});
  EXPECT_NEAR(curve.amdahl_serial_fraction(), 0.29, 0.07);
}

TEST(SweepTest, KneeThresholds) {
  const CompiledTrace c = record_compiled([]() {
    sol::compute(SimTime::millis(30));
    workloads::fork_join(8, SimTime::millis(70) / 8);
  });
  const SpeedupCurve curve = sweep_cpus(c, kCpus, SimConfig{});
  // f = 0.3: efficiency at 2 CPUs ~ 0.77, at 4 ~ 0.53, at 8 ~ 0.32.
  EXPECT_EQ(curve.knee(0.75), 2);
  EXPECT_EQ(curve.knee(0.5), 4);
  EXPECT_EQ(curve.knee(0.99), 1) << "falls back to the smallest count";
}

TEST(SweepTest, RejectsEmptyInput) {
  const CompiledTrace c = record_compiled([]() {
    workloads::fork_join(2, SimTime::millis(1));
  });
  EXPECT_THROW(sweep_cpus(c, {}, SimConfig{}), Error);
  EXPECT_THROW(SpeedupCurve({}), Error);
}

TEST(SweepTest, SinglePointDegenerateFit) {
  const CompiledTrace c = record_compiled([]() {
    sol::compute(SimTime::millis(50));
    workloads::fork_join(4, SimTime::millis(50) / 4);
  });
  const int one[] = {4};
  const SpeedupCurve curve = sweep_cpus(c, one, SimConfig{});
  // S(4) = 1/(0.5 + 0.5/4) = 1.6 -> f = (4/1.6 - 1)/3 = 0.5.
  EXPECT_NEAR(curve.amdahl_serial_fraction(), 0.5, 0.05);
}

TEST(SweepTest, KneeStopsAtFirstDip) {
  // A curve whose efficiency dips below the threshold at 2 CPUs and
  // recovers at 4 must report the knee at the smallest count, not at
  // the recovered one.
  std::vector<SweepPoint> pts(3);
  pts[0] = {1, 1.0, 1.0, SimTime::millis(100)};
  pts[1] = {2, 0.8, 0.4, SimTime::millis(125)};
  pts[2] = {4, 3.2, 0.8, SimTime::millis(31)};
  const SpeedupCurve curve(std::move(pts));
  EXPECT_EQ(curve.knee(0.5), 1);
  EXPECT_EQ(curve.knee(0.3), 4);
}

TEST(SweepTest, ParallelSweepMatchesSerialPointForPoint) {
  const CompiledTrace c = record_compiled([]() {
    workloads::fft(workloads::SplashParams{8, 0.2});
  });
  const int counts[] = {1, 2, 3, 4, 6, 8};
  const SpeedupCurve serial = sweep_cpus(c, counts, SimConfig{});
  SweepOptions opt;
  opt.jobs = 4;
  const SpeedupCurve parallel = sweep_cpus(c, counts, SimConfig{}, opt);
  ASSERT_EQ(serial.points().size(), parallel.points().size());
  for (std::size_t i = 0; i < serial.points().size(); ++i) {
    const SweepPoint& s = serial.points()[i];
    const SweepPoint& p = parallel.points()[i];
    EXPECT_EQ(s.cpus, p.cpus);
    EXPECT_EQ(s.speedup, p.speedup) << "cpus=" << s.cpus;
    EXPECT_EQ(s.efficiency, p.efficiency) << "cpus=" << s.cpus;
    EXPECT_EQ(s.total, p.total) << "cpus=" << s.cpus;
  }
}

TEST(SweepTest, SweepOptionsCapturesResultsAndTimelines) {
  const CompiledTrace c = record_compiled([]() {
    workloads::fork_join(4, SimTime::millis(5));
  });
  const int counts[] = {1, 4};
  SimConfig base;
  base.build_timeline = true;
  std::vector<SimResult> results;
  SweepOptions opt;
  opt.jobs = 2;
  opt.honor_build_timeline = true;
  opt.results = &results;
  const SpeedupCurve curve = sweep_cpus(c, counts, base, opt);
  ASSERT_EQ(results.size(), 2u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].total, curve.points()[i].total);
    EXPECT_FALSE(results[i].segments.empty())
        << "honor_build_timeline must keep per-point timelines";
  }

  // The default path discards timelines even when the base asks for one.
  std::vector<SimResult> bare;
  SweepOptions defaults;
  defaults.results = &bare;
  sweep_cpus(c, counts, base, defaults);
  ASSERT_EQ(bare.size(), 2u);
  EXPECT_TRUE(bare[0].segments.empty());
}

}  // namespace
}  // namespace vppb::core
