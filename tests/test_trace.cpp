// Unit tests for the trace model and its text serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "trace/io.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace vppb::trace {
namespace {

Record rec(std::int64_t us, ThreadId tid, Phase phase, Op op,
           ObjectRef obj = {}, std::int64_t arg = 0) {
  Record r;
  r.at = SimTime::micros(us);
  r.tid = tid;
  r.phase = phase;
  r.op = op;
  r.obj = obj;
  r.arg = arg;
  return r;
}

Trace example_trace() {
  // The paper's fig. 2 program: main creates thr_a (T4) and thr_b (T5),
  // joins both; worker threads just exit.
  Trace t;
  t.upsert_thread(1).name = t.strings.intern("main");
  t.upsert_thread(4).name = t.strings.intern("thr_a");
  t.upsert_thread(5).name = t.strings.intern("thr_b");
  t.records.push_back(rec(0, 1, Phase::kCall, Op::kStartCollect));
  t.records.push_back(
      rec(5, 1, Phase::kCall, Op::kThrCreate, {ObjKind::kThread, 0}));
  t.records.push_back(
      rec(10, 1, Phase::kReturn, Op::kThrCreate, {ObjKind::kThread, 0}, 4));
  t.records.push_back(
      rec(12, 1, Phase::kCall, Op::kThrCreate, {ObjKind::kThread, 0}));
  t.records.push_back(
      rec(20, 1, Phase::kReturn, Op::kThrCreate, {ObjKind::kThread, 0}, 5));
  t.records.push_back(
      rec(25, 1, Phase::kCall, Op::kThrJoin, {ObjKind::kThread, 4}));
  t.records.push_back(rec(40, 4, Phase::kCall, Op::kThrExit,
                          {ObjKind::kThread, 4}));
  t.records.push_back(rec(52, 5, Phase::kCall, Op::kThrExit,
                          {ObjKind::kThread, 5}));
  t.records.push_back(
      rec(53, 1, Phase::kReturn, Op::kThrJoin, {ObjKind::kThread, 4}, 4));
  t.records.push_back(
      rec(60, 1, Phase::kCall, Op::kThrJoin, {ObjKind::kThread, 5}));
  t.records.push_back(
      rec(74, 1, Phase::kReturn, Op::kThrJoin, {ObjKind::kThread, 5}, 5));
  t.records.push_back(rec(80, 1, Phase::kCall, Op::kThrExit,
                          {ObjKind::kThread, 1}));
  t.records.push_back(rec(80, 1, Phase::kCall, Op::kEndCollect));
  return t;
}

TEST(OpNames, RoundTripEveryOp) {
  for (int i = 0; i <= static_cast<int>(Op::kIoWait); ++i) {
    const Op op = static_cast<Op>(i);
    Op back;
    ASSERT_TRUE(op_from_name(op_name(op), back)) << op_name(op);
    EXPECT_EQ(back, op);
  }
  Op dummy;
  EXPECT_FALSE(op_from_name("nonsense", dummy));
}

TEST(OpNames, Classification) {
  EXPECT_TRUE(op_may_block(Op::kMutexLock));
  EXPECT_TRUE(op_may_block(Op::kThrJoin));
  EXPECT_FALSE(op_may_block(Op::kMutexUnlock));
  EXPECT_TRUE(op_is_try(Op::kMutexTrylock));
  EXPECT_FALSE(op_is_try(Op::kMutexLock));
  EXPECT_EQ(op_obj_kind(Op::kSemaPost), ObjKind::kSema);
  EXPECT_EQ(op_obj_kind(Op::kThrCreate), ObjKind::kThread);
}

TEST(StringPoolTest, InternsAndDedupes) {
  StringPool pool;
  EXPECT_EQ(pool.intern(""), 0u);
  const auto a = pool.intern("ocean.cpp");
  const auto b = pool.intern("fft.cpp");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.intern("ocean.cpp"), a);
  EXPECT_EQ(pool.get(a), "ocean.cpp");
  EXPECT_THROW(pool.get(999), Error);
}

TEST(TraceTest, AddLocationDedupes) {
  Trace t;
  const auto a = t.add_location("x.cpp", 10, "f");
  const auto b = t.add_location("x.cpp", 10, "f");
  const auto c = t.add_location("x.cpp", 11, "f");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(t.locations.size(), 3u);  // reserved slot 0 + two sites
}

TEST(TraceTest, DurationIsLastRecord) {
  const Trace t = example_trace();
  EXPECT_EQ(t.duration(), SimTime::micros(80));
  EXPECT_EQ(Trace{}.duration(), SimTime::zero());
}

TEST(TraceTest, ValidateAcceptsWellFormed) {
  EXPECT_NO_THROW(example_trace().validate());
}

TEST(TraceTest, ValidateRejectsTimeTravel) {
  Trace t = example_trace();
  t.records[3].at = SimTime::micros(1);  // earlier than record 2
  EXPECT_THROW(t.validate(), Error);
}

TEST(TraceTest, ValidateRejectsUnknownThread) {
  Trace t = example_trace();
  t.records[1].tid = 77;
  EXPECT_THROW(t.validate(), Error);
}

TEST(TraceTest, ValidateRejectsUnmatchedReturn) {
  Trace t = example_trace();
  t.records[2].op = Op::kMutexLock;  // return of a call never made
  EXPECT_THROW(t.validate(), Error);
}

TEST(TraceTest, SplitByThreadPreservesOrder) {
  // Paper fig. 4: the simulator sorts the log into per-thread lists.
  const Trace t = example_trace();
  const auto lists = split_by_thread(t);
  ASSERT_EQ(lists.size(), 3u);
  EXPECT_EQ(lists.at(1).size(), 11u);
  EXPECT_EQ(lists.at(4).size(), 1u);
  EXPECT_EQ(lists.at(5).size(), 1u);
  for (const auto& [tid, list] : lists) {
    for (std::size_t i = 1; i < list.size(); ++i)
      EXPECT_GE(list[i].at, list[i - 1].at);
    for (const auto& r : list) EXPECT_EQ(r.tid, tid);
  }
}

TEST(TraceTest, ComputeStats) {
  const TraceStats s = compute_stats(example_trace());
  EXPECT_EQ(s.records, 13u);
  EXPECT_EQ(s.threads, 3u);
  EXPECT_EQ(s.duration, SimTime::micros(80));
  EXPECT_EQ(s.per_op.at(Op::kThrCreate), 2u);
  EXPECT_EQ(s.per_op.at(Op::kThrJoin), 2u);
  EXPECT_EQ(s.per_op.at(Op::kThrExit), 3u);
  EXPECT_GT(s.events_per_second, 0.0);
}

TEST(TraceIo, RoundTripPreservesEverything) {
  Trace t = example_trace();
  t.add_location("demo.cpp", 42, "main");
  t.records[1].loc = 0;
  const std::string text = to_text(t);
  const Trace back = from_text(text);
  ASSERT_EQ(back.records.size(), t.records.size());
  for (std::size_t i = 0; i < t.records.size(); ++i) {
    EXPECT_EQ(back.records[i].at, t.records[i].at) << i;
    EXPECT_EQ(back.records[i].tid, t.records[i].tid) << i;
    EXPECT_EQ(back.records[i].phase, t.records[i].phase) << i;
    EXPECT_EQ(back.records[i].op, t.records[i].op) << i;
    EXPECT_EQ(back.records[i].obj, t.records[i].obj) << i;
    EXPECT_EQ(back.records[i].arg, t.records[i].arg) << i;
  }
  ASSERT_EQ(back.threads.size(), 3u);
  EXPECT_EQ(back.strings.get(back.find_thread(4)->name), "thr_a");
  // Serialization is deterministic.
  EXPECT_EQ(to_text(back), text);
}

TEST(TraceIo, RejectsMalformedInput) {
  EXPECT_THROW(from_text("garbage line\n"), Error);
  EXPECT_THROW(from_text("rec 1 2 C\n"), Error);
  EXPECT_THROW(from_text("rec 0 1 X thr_exit thread 1 0 0 0\n"), Error);
  EXPECT_THROW(from_text("rec 0 1 C no_such_op thread 1 0 0 0\n"), Error);
  EXPECT_THROW(from_text("loc 5 f.cpp 1 f\n"), Error);  // non-dense index
}

TEST(TraceIo, IgnoresCommentsAndBlankLines) {
  const Trace t = from_text(
      "# comment\n"
      "\n"
      "thread 1 main main 0 0\n"
      "rec 0 1 C start_collect none 0 0 0 0\n");
  EXPECT_EQ(t.records.size(), 1u);
}

TEST(TraceIo, FileRoundTrip) {
  const Trace t = example_trace();
  const std::string path = testing::TempDir() + "/vppb_trace_test.log";
  save_file(t, path);
  const Trace back = load_file(path);
  EXPECT_EQ(back.records.size(), t.records.size());
  EXPECT_THROW(load_file("/nonexistent/dir/x.log"), Error);
}

TEST(TraceTest, LocationString) {
  Trace t = example_trace();
  const auto loc = t.add_location("demo.cpp", 42, "main");
  t.records[1].loc = loc;
  EXPECT_EQ(t.location_string(t.records[1]), "demo.cpp:42");
  EXPECT_EQ(t.location_string(t.records[0]), "");
}

}  // namespace
}  // namespace vppb::trace
