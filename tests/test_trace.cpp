// Unit tests for the trace model, its text serialization, and the
// salvaging loaders' behaviour on damaged input.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "trace/binary.hpp"
#include "trace/chunked.hpp"
#include "trace/io.hpp"
#include "trace/lint.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace vppb::trace {
namespace {

Record rec(std::int64_t us, ThreadId tid, Phase phase, Op op,
           ObjectRef obj = {}, std::int64_t arg = 0) {
  Record r;
  r.at = SimTime::micros(us);
  r.tid = tid;
  r.phase = phase;
  r.op = op;
  r.obj = obj;
  r.arg = arg;
  return r;
}

Trace example_trace() {
  // The paper's fig. 2 program: main creates thr_a (T4) and thr_b (T5),
  // joins both; worker threads just exit.
  Trace t;
  t.upsert_thread(1).name = t.strings.intern("main");
  t.upsert_thread(4).name = t.strings.intern("thr_a");
  t.upsert_thread(5).name = t.strings.intern("thr_b");
  t.records.push_back(rec(0, 1, Phase::kCall, Op::kStartCollect));
  t.records.push_back(
      rec(5, 1, Phase::kCall, Op::kThrCreate, {ObjKind::kThread, 0}));
  t.records.push_back(
      rec(10, 1, Phase::kReturn, Op::kThrCreate, {ObjKind::kThread, 0}, 4));
  t.records.push_back(
      rec(12, 1, Phase::kCall, Op::kThrCreate, {ObjKind::kThread, 0}));
  t.records.push_back(
      rec(20, 1, Phase::kReturn, Op::kThrCreate, {ObjKind::kThread, 0}, 5));
  t.records.push_back(
      rec(25, 1, Phase::kCall, Op::kThrJoin, {ObjKind::kThread, 4}));
  t.records.push_back(rec(40, 4, Phase::kCall, Op::kThrExit,
                          {ObjKind::kThread, 4}));
  t.records.push_back(rec(52, 5, Phase::kCall, Op::kThrExit,
                          {ObjKind::kThread, 5}));
  t.records.push_back(
      rec(53, 1, Phase::kReturn, Op::kThrJoin, {ObjKind::kThread, 4}, 4));
  t.records.push_back(
      rec(60, 1, Phase::kCall, Op::kThrJoin, {ObjKind::kThread, 5}));
  t.records.push_back(
      rec(74, 1, Phase::kReturn, Op::kThrJoin, {ObjKind::kThread, 5}, 5));
  t.records.push_back(rec(80, 1, Phase::kCall, Op::kThrExit,
                          {ObjKind::kThread, 1}));
  t.records.push_back(rec(80, 1, Phase::kCall, Op::kEndCollect));
  return t;
}

TEST(OpNames, RoundTripEveryOp) {
  for (int i = 0; i <= static_cast<int>(Op::kIoWait); ++i) {
    const Op op = static_cast<Op>(i);
    Op back;
    ASSERT_TRUE(op_from_name(op_name(op), back)) << op_name(op);
    EXPECT_EQ(back, op);
  }
  Op dummy;
  EXPECT_FALSE(op_from_name("nonsense", dummy));
}

TEST(OpNames, Classification) {
  EXPECT_TRUE(op_may_block(Op::kMutexLock));
  EXPECT_TRUE(op_may_block(Op::kThrJoin));
  EXPECT_FALSE(op_may_block(Op::kMutexUnlock));
  EXPECT_TRUE(op_is_try(Op::kMutexTrylock));
  EXPECT_FALSE(op_is_try(Op::kMutexLock));
  EXPECT_EQ(op_obj_kind(Op::kSemaPost), ObjKind::kSema);
  EXPECT_EQ(op_obj_kind(Op::kThrCreate), ObjKind::kThread);
}

TEST(StringPoolTest, InternsAndDedupes) {
  StringPool pool;
  EXPECT_EQ(pool.intern(""), 0u);
  const auto a = pool.intern("ocean.cpp");
  const auto b = pool.intern("fft.cpp");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.intern("ocean.cpp"), a);
  EXPECT_EQ(pool.get(a), "ocean.cpp");
  EXPECT_THROW(pool.get(999), Error);
}

TEST(TraceTest, AddLocationDedupes) {
  Trace t;
  const auto a = t.add_location("x.cpp", 10, "f");
  const auto b = t.add_location("x.cpp", 10, "f");
  const auto c = t.add_location("x.cpp", 11, "f");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(t.locations.size(), 3u);  // reserved slot 0 + two sites
}

TEST(TraceTest, DurationIsLastRecord) {
  const Trace t = example_trace();
  EXPECT_EQ(t.duration(), SimTime::micros(80));
  EXPECT_EQ(Trace{}.duration(), SimTime::zero());
}

TEST(TraceTest, ValidateAcceptsWellFormed) {
  EXPECT_NO_THROW(example_trace().validate());
}

TEST(TraceTest, ValidateRejectsTimeTravel) {
  Trace t = example_trace();
  t.records[3].at = SimTime::micros(1);  // earlier than record 2
  EXPECT_THROW(t.validate(), Error);
}

TEST(TraceTest, ValidateRejectsUnknownThread) {
  Trace t = example_trace();
  t.records[1].tid = 77;
  EXPECT_THROW(t.validate(), Error);
}

TEST(TraceTest, ValidateRejectsUnmatchedReturn) {
  Trace t = example_trace();
  t.records[2].op = Op::kMutexLock;  // return of a call never made
  EXPECT_THROW(t.validate(), Error);
}

TEST(TraceTest, SplitByThreadPreservesOrder) {
  // Paper fig. 4: the simulator sorts the log into per-thread lists.
  const Trace t = example_trace();
  const auto lists = split_by_thread(t);
  ASSERT_EQ(lists.size(), 3u);
  EXPECT_EQ(lists.at(1).size(), 11u);
  EXPECT_EQ(lists.at(4).size(), 1u);
  EXPECT_EQ(lists.at(5).size(), 1u);
  for (const auto& [tid, list] : lists) {
    for (std::size_t i = 1; i < list.size(); ++i)
      EXPECT_GE(list[i].at, list[i - 1].at);
    for (const auto& r : list) EXPECT_EQ(r.tid, tid);
  }
}

TEST(TraceTest, ComputeStats) {
  const TraceStats s = compute_stats(example_trace());
  EXPECT_EQ(s.records, 13u);
  EXPECT_EQ(s.threads, 3u);
  EXPECT_EQ(s.duration, SimTime::micros(80));
  EXPECT_EQ(s.per_op.at(Op::kThrCreate), 2u);
  EXPECT_EQ(s.per_op.at(Op::kThrJoin), 2u);
  EXPECT_EQ(s.per_op.at(Op::kThrExit), 3u);
  EXPECT_GT(s.events_per_second, 0.0);
}

TEST(TraceIo, RoundTripPreservesEverything) {
  Trace t = example_trace();
  t.add_location("demo.cpp", 42, "main");
  t.records[1].loc = 0;
  const std::string text = to_text(t);
  const Trace back = from_text(text);
  ASSERT_EQ(back.records.size(), t.records.size());
  for (std::size_t i = 0; i < t.records.size(); ++i) {
    EXPECT_EQ(back.records[i].at, t.records[i].at) << i;
    EXPECT_EQ(back.records[i].tid, t.records[i].tid) << i;
    EXPECT_EQ(back.records[i].phase, t.records[i].phase) << i;
    EXPECT_EQ(back.records[i].op, t.records[i].op) << i;
    EXPECT_EQ(back.records[i].obj, t.records[i].obj) << i;
    EXPECT_EQ(back.records[i].arg, t.records[i].arg) << i;
  }
  ASSERT_EQ(back.threads.size(), 3u);
  EXPECT_EQ(back.strings.get(back.find_thread(4)->name), "thr_a");
  // Serialization is deterministic.
  EXPECT_EQ(to_text(back), text);
}

TEST(TraceIo, RejectsMalformedInput) {
  EXPECT_THROW(from_text("garbage line\n"), Error);
  EXPECT_THROW(from_text("rec 1 2 C\n"), Error);
  EXPECT_THROW(from_text("rec 0 1 X thr_exit thread 1 0 0 0\n"), Error);
  EXPECT_THROW(from_text("rec 0 1 C no_such_op thread 1 0 0 0\n"), Error);
  EXPECT_THROW(from_text("loc 5 f.cpp 1 f\n"), Error);  // non-dense index
}

TEST(TraceIo, IgnoresCommentsAndBlankLines) {
  const Trace t = from_text(
      "# comment\n"
      "\n"
      "thread 1 main main 0 0\n"
      "rec 0 1 C start_collect none 0 0 0 0\n");
  EXPECT_EQ(t.records.size(), 1u);
}

TEST(TraceIo, FileRoundTrip) {
  const Trace t = example_trace();
  const std::string path = testing::TempDir() + "/vppb_trace_test.log";
  save_file(t, path);
  const Trace back = load_file(path);
  EXPECT_EQ(back.records.size(), t.records.size());
  EXPECT_THROW(load_file("/nonexistent/dir/x.log"), Error);
}

TEST(TraceTest, LocationString) {
  Trace t = example_trace();
  const auto loc = t.add_location("demo.cpp", 42, "main");
  t.records[1].loc = loc;
  EXPECT_EQ(t.location_string(t.records[1]), "demo.cpp:42");
  EXPECT_EQ(t.location_string(t.records[0]), "");
}

// ---------------------------------------------------------------------------
// Damaged-input behaviour: strict loads reject, salvage loads recover the
// longest valid prefix and say exactly what was lost.

LoadOptions salvage_opt() {
  LoadOptions opt;
  opt.salvage = true;
  return opt;
}

TEST(TraceSalvage, ZeroByteInputs) {
  // Binary and chunked decoders need at least a header; even salvage
  // has nothing to work with.
  const std::uint8_t none = 0;
  EXPECT_THROW(from_binary(&none, 0), Error);
  EXPECT_THROW(from_chunked(&none, 0), Error);
  LoadReport report;
  EXPECT_THROW(from_binary(&none, 0, salvage_opt(), &report), Error);
  EXPECT_THROW(from_chunked(&none, 0, salvage_opt(), &report), Error);
}

TEST(TraceSalvage, GiantHeaderCountsRejected) {
  // "VPPB" v1 claiming ~4 billion strings: the claimed count exceeds the
  // bytes actually present, and must be rejected before any allocation
  // of that size is attempted.
  std::vector<std::uint8_t> bad = {'V', 'P', 'P', 'B', 1,
                                   0xFF, 0xFF, 0xFF, 0xFF, 0x0F};
  EXPECT_THROW(from_binary(bad.data(), bad.size()), Error);
  LoadReport report;
  EXPECT_THROW(from_binary(bad.data(), bad.size(), salvage_opt(), &report),
               Error);
}

TEST(TraceSalvage, TruncatedBinaryRecoversPrefix) {
  const Trace t = example_trace();
  const std::vector<std::uint8_t> full = to_binary(t);
  const std::size_t cut = full.size() - 5;
  EXPECT_THROW(from_binary(full.data(), cut), Error);

  LoadReport report;
  const Trace back = from_binary(full.data(), cut, salvage_opt(), &report);
  EXPECT_TRUE(report.salvaged);
  EXPECT_FALSE(report.issues.empty());
  EXPECT_LT(back.records.size(), t.records.size());
  EXPECT_EQ(report.records_recovered, back.records.size());
  EXPECT_GT(report.records_dropped, 0u);
  EXPECT_NO_THROW(back.validate());
  // The recovered prefix is byte-for-byte the original's records.
  for (std::size_t i = 0; i < back.records.size(); ++i)
    EXPECT_EQ(back.records[i].at, t.records[i].at) << i;
}

TEST(TraceSalvage, CorruptedBinaryByteRecoversPrefix) {
  const Trace t = example_trace();
  std::vector<std::uint8_t> bytes = to_binary(t);
  bytes[bytes.size() - 3] ^= 0xFF;  // damage inside the record section
  LoadReport report;
  const Trace back =
      from_binary(bytes.data(), bytes.size(), salvage_opt(), &report);
  EXPECT_LE(back.records.size(), t.records.size());
  EXPECT_NO_THROW(back.validate());
}

TEST(TraceSalvage, ChunkedRoundTripStrict) {
  const Trace t = example_trace();
  const std::vector<std::uint8_t> bytes = to_chunked(t, 4);
  const Trace back = from_chunked(bytes.data(), bytes.size());
  ASSERT_EQ(back.records.size(), t.records.size());
  for (std::size_t i = 0; i < t.records.size(); ++i) {
    EXPECT_EQ(back.records[i].at, t.records[i].at) << i;
    EXPECT_EQ(back.records[i].op, t.records[i].op) << i;
  }
  EXPECT_EQ(back.threads.size(), t.threads.size());
}

TEST(TraceSalvage, ChunkedBadChecksumDropsTail) {
  const Trace t = example_trace();
  std::vector<std::uint8_t> bytes = to_chunked(t, 4);  // several chunks
  bytes[bytes.size() - 2] ^= 0x01;  // corrupt the last chunk's payload
  EXPECT_THROW(from_chunked(bytes.data(), bytes.size()), Error);

  LoadReport report;
  const Trace back =
      from_chunked(bytes.data(), bytes.size(), salvage_opt(), &report);
  EXPECT_TRUE(report.salvaged);
  EXPECT_GE(report.chunks_loaded, 1u);
  EXPECT_GE(report.chunks_dropped, 1u);
  EXPECT_LT(back.records.size(), t.records.size());
  EXPECT_NO_THROW(back.validate());
}

TEST(TraceSalvage, ChunkedTruncatedMidChunkDropsTail) {
  const Trace t = example_trace();
  const std::vector<std::uint8_t> full = to_chunked(t, 4);
  const std::size_t cut = full.size() - 7;  // inside the last chunk
  LoadReport report;
  const Trace back = from_chunked(full.data(), cut, salvage_opt(), &report);
  EXPECT_TRUE(report.salvaged);
  EXPECT_LT(back.records.size(), t.records.size());
  EXPECT_NO_THROW(back.validate());
}

TEST(TraceSalvage, TextSalvageStopsAtBadLine) {
  const std::string text =
      "thread 1 main main 0 0\n"
      "rec 0 1 C start_collect none 0 0 0 0\n"
      "rec 5 1 C user_mark mark 0 0 0 0\n"
      "this line is garbage\n"
      "rec 9 1 C user_mark mark 0 0 0 0\n";
  EXPECT_THROW(from_text(text), Error);
  LoadReport report;
  const Trace back = from_text(text, salvage_opt(), &report);
  EXPECT_EQ(back.records.size(), 2u);
  EXPECT_TRUE(report.salvaged);
  EXPECT_EQ(report.records_dropped, 1u);  // the rec after the bad line
}

TEST(TraceSalvage, OpenCallTrimmed) {
  // A log that dies inside thr_join: salvage trims back to the last
  // point with no call in flight so the compiler accepts the result.
  const std::string text =
      "thread 1 main main 0 0\n"
      "rec 0 1 C start_collect none 0 0 0 0\n"
      "rec 5 1 C user_mark mark 0 0 0 0\n"
      "rec 9 1 C thr_join thread 1 0 0 0\n";
  LoadReport report;
  const Trace back = from_text(text, salvage_opt(), &report);
  EXPECT_EQ(back.records.size(), 2u);
  bool saw_trim = false;
  for (const auto& issue : report.issues)
    saw_trim |= issue.kind == IssueKind::kOpenCallTrimmed;
  EXPECT_TRUE(saw_trim);
}

TEST(TraceSalvage, LoadAnyFileSniffsAllFormats) {
  const Trace t = example_trace();
  const std::string dir = testing::TempDir();
  const std::string text_path = dir + "/sniff_text.log";
  const std::string bin_path = dir + "/sniff_bin.log";
  const std::string chunk_path = dir + "/sniff_chunk.log";
  save_file(t, text_path);
  save_binary_file(t, bin_path);
  {
    const std::vector<std::uint8_t> bytes = to_chunked(t);
    std::ofstream(chunk_path, std::ios::binary)
        .write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
  }
  for (const auto& p : {text_path, bin_path, chunk_path}) {
    const Trace back = load_any_file(p);
    EXPECT_EQ(back.records.size(), t.records.size()) << p;
  }
}

TEST(TraceSalvage, ReportSummaryMentionsCounts) {
  const Trace t = example_trace();
  const std::vector<std::uint8_t> full = to_binary(t);
  LoadReport report;
  (void)from_binary(full.data(), full.size() - 5, salvage_opt(), &report);
  const std::string s = report.summary();
  EXPECT_NE(s.find("recovered"), std::string::npos) << s;
}

// ---- semantic lint ---------------------------------------------------------

TEST(LintTest, CleanTraceIsClean) {
  const LintReport report = lint(example_trace());
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(LintTest, BarrierCondWaitPatternIsClean) {
  // The SPLASH barrier shape: lock, cond_wait (the library releases and
  // reacquires the mutex), unlock.  The mutex id rides only on the
  // *call* record's arg — the return's arg is 0 — so the linter must
  // pair the edges per thread or it reports a bogus unlock-without-lock
  // on every barrier exit (a real bug this test pins).
  Trace t;
  t.upsert_thread(1).name = t.strings.intern("main");
  t.records.push_back(rec(0, 1, Phase::kCall, Op::kStartCollect));
  t.records.push_back(
      rec(5, 1, Phase::kCall, Op::kMutexLock, {ObjKind::kMutex, 7}));
  t.records.push_back(
      rec(6, 1, Phase::kReturn, Op::kMutexLock, {ObjKind::kMutex, 7}));
  t.records.push_back(
      rec(7, 1, Phase::kCall, Op::kCondWait, {ObjKind::kCond, 3}, 7));
  t.records.push_back(
      rec(20, 1, Phase::kReturn, Op::kCondWait, {ObjKind::kCond, 3}));
  t.records.push_back(
      rec(21, 1, Phase::kCall, Op::kMutexUnlock, {ObjKind::kMutex, 7}));
  t.records.push_back(
      rec(22, 1, Phase::kReturn, Op::kMutexUnlock, {ObjKind::kMutex, 7}));
  const LintReport report = lint(t);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(LintTest, UnlockWithoutLockIsAnError) {
  Trace t;
  t.upsert_thread(1).name = t.strings.intern("main");
  t.records.push_back(
      rec(5, 1, Phase::kCall, Op::kMutexUnlock, {ObjKind::kMutex, 7}));
  const LintReport report = lint(t);
  EXPECT_EQ(report.errors, 1u) << report.to_string();
  EXPECT_NE(report.to_string().find("not held"), std::string::npos);
}

TEST(LintTest, UnlockByOtherThreadIsAWarning) {
  Trace t;
  t.upsert_thread(1);
  t.upsert_thread(4);
  t.records.push_back(
      rec(5, 1, Phase::kCall, Op::kMutexLock, {ObjKind::kMutex, 7}));
  t.records.push_back(
      rec(6, 1, Phase::kReturn, Op::kMutexLock, {ObjKind::kMutex, 7}));
  t.records.push_back(
      rec(9, 4, Phase::kCall, Op::kMutexUnlock, {ObjKind::kMutex, 7}));
  const LintReport report = lint(t);
  EXPECT_EQ(report.errors, 0u) << report.to_string();
  EXPECT_EQ(report.warnings, 1u) << report.to_string();
}

TEST(LintTest, NegativeSemaphoreCountIsAnError) {
  Trace t;
  t.upsert_thread(1);
  t.records.push_back(
      rec(1, 1, Phase::kCall, Op::kSemaInit, {ObjKind::kSema, 2}, 1));
  t.records.push_back(
      rec(2, 1, Phase::kCall, Op::kSemaWait, {ObjKind::kSema, 2}));
  t.records.push_back(
      rec(3, 1, Phase::kReturn, Op::kSemaWait, {ObjKind::kSema, 2}));
  t.records.push_back(
      rec(4, 1, Phase::kCall, Op::kSemaWait, {ObjKind::kSema, 2}));
  t.records.push_back(
      rec(5, 1, Phase::kReturn, Op::kSemaWait, {ObjKind::kSema, 2}));
  const LintReport report = lint(t);
  EXPECT_EQ(report.errors, 1u) << report.to_string();
  EXPECT_NE(report.to_string().find("driven to -1"), std::string::npos);
}

TEST(LintTest, JoinFindingsAreTyped) {
  Trace t;
  t.upsert_thread(1);
  t.records.push_back(
      rec(1, 1, Phase::kCall, Op::kThrJoin, {ObjKind::kThread, 42}));
  t.records.push_back(
      rec(2, 1, Phase::kCall, Op::kThrJoin, {ObjKind::kThread, 1}));
  const LintReport report = lint(t);
  EXPECT_EQ(report.errors, 2u) << report.to_string();
  EXPECT_NE(report.to_string().find("unknown thread 42"), std::string::npos);
  EXPECT_NE(report.to_string().find("joins itself"), std::string::npos);
}

TEST(LintTest, NonMonotonicTimestampIsAnError) {
  Trace t;
  t.upsert_thread(1);
  t.records.push_back(rec(10, 1, Phase::kCall, Op::kThrYield));
  t.records.push_back(rec(5, 1, Phase::kCall, Op::kThrYield));
  const LintReport report = lint(t);
  EXPECT_EQ(report.errors, 1u) << report.to_string();
  EXPECT_NE(report.to_string().find("goes backwards"), std::string::npos);
}

}  // namespace
}  // namespace vppb::trace
