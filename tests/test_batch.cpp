// Batched-driver parity: a reused SimEngine workspace and the pooled
// SweepRunner must be observationally identical to the one-shot
// simulate() path.  Every pinned golden digest is replayed through the
// batched driver — plain, with an attached (unlimited) guard, and with
// tracing enabled — and a mixed sweep is checked batched-vs-legacy
// result for result.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/engine.hpp"
#include "core/guard.hpp"
#include "core/result.hpp"
#include "core/sweep.hpp"
#include "golden_cases.hpp"
#include "obs/span.hpp"
#include "workloads/splash.hpp"
#include "workloads/synthetic.hpp"

namespace vppb::core {
namespace {

TEST(BatchedDriver, OneReusedEngineReproducesEveryGoldenDigest) {
  // The strongest reuse test: a single engine runs all twelve cases in
  // sequence, so every case inherits the workspace the previous one
  // dirtied.  Any state that a reset fails to clear shows up as a
  // digest mismatch here.
  SimEngine engine;
  for (const GoldenCase& gc : kGoldenCases) {
    const CompiledTrace compiled = record_compiled(gc.workload);
    SimConfig cfg;
    gc.configure(cfg);
    const SimResult r = engine.run(compiled, cfg);
    EXPECT_EQ(digest(r), gc.golden) << gc.name;
  }
}

TEST(BatchedDriver, RepeatRunsOnOneEngineAreBitIdentical) {
  SimEngine engine;
  for (const GoldenCase& gc : kGoldenCases) {
    const CompiledTrace compiled = record_compiled(gc.workload);
    SimConfig cfg;
    gc.configure(cfg);
    const std::uint64_t first = digest(engine.run(compiled, cfg));
    const std::uint64_t second = digest(engine.run(compiled, cfg));
    EXPECT_EQ(first, gc.golden) << gc.name;
    EXPECT_EQ(second, gc.golden) << gc.name;
  }
}

TEST(BatchedDriver, GuardAttachedRunsMatchEveryGoldenDigest) {
  // An attached guard with no budgets must not perturb a batched run,
  // exactly as the guard suite proves for the one-shot path.
  SimEngine engine;
  const RunGuard guard;
  for (const GoldenCase& gc : kGoldenCases) {
    const CompiledTrace compiled = record_compiled(gc.workload);
    SimConfig cfg;
    gc.configure(cfg);
    const SimResult r = engine.run(compiled, cfg, &guard);
    EXPECT_EQ(digest(r), gc.golden) << gc.name;
  }
}

TEST(BatchedDriver, TracingEnabledRunsMatchEveryGoldenDigest) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.enable();
  SimEngine engine;
  for (const GoldenCase& gc : kGoldenCases) {
    const CompiledTrace compiled = record_compiled(gc.workload);
    SimConfig cfg;
    gc.configure(cfg);
    const SimResult r = engine.run(compiled, cfg);
    EXPECT_EQ(digest(r), gc.golden) << gc.name;
  }
  tracer.disable();
  tracer.clear();
}

TEST(BatchedDriver, PooledRunnerMatchesGoldenDigests) {
  SweepRunner runner;
  for (const GoldenCase& gc : kGoldenCases) {
    const CompiledTrace compiled = record_compiled(gc.workload);
    SimConfig cfg;
    gc.configure(cfg);
    EXPECT_EQ(digest(runner.run(compiled, cfg)), gc.golden) << gc.name;
  }
}

TEST(BatchedDriver, MixedSweepMatchesLegacyPointByPoint) {
  // A 1..8 CPU sweep through the batched SweepRunner against the same
  // sweep executed as independent one-shot simulate() calls: every
  // per-point result must digest equally, not just the speed-up curve.
  const CompiledTrace compiled = record_compiled(
      [] { workloads::fft(workloads::SplashParams{16, 0.2}); });
  SimConfig base;
  base.sched.lwps = 6;  // exercise the two-level path, not 1:1 binding

  std::vector<int> counts(8);
  std::iota(counts.begin(), counts.end(), 1);

  std::vector<SimResult> batched_results;
  SweepOptions opt;
  opt.results = &batched_results;
  SweepRunner runner;
  const SpeedupCurve batched = runner.sweep(compiled, counts, base, opt);

  ASSERT_EQ(batched_results.size(), counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    SimConfig cfg = base;
    cfg.hw.cpus = counts[i];
    cfg.build_timeline = false;
    const SimResult legacy = simulate(compiled, cfg);
    EXPECT_EQ(digest(batched_results[i]), digest(legacy))
        << "cpus=" << counts[i];
    EXPECT_DOUBLE_EQ(batched.points()[i].speedup, legacy.speedup);
  }
}

TEST(BatchedDriver, ParallelSweepMatchesSerialSweep) {
  const CompiledTrace compiled = record_compiled(
      [] { workloads::radix(workloads::SplashParams{8, 0.15}); });
  SimConfig base;
  std::vector<int> counts(8);
  std::iota(counts.begin(), counts.end(), 1);

  std::vector<SimResult> serial_results, parallel_results;
  SweepOptions serial_opt;
  serial_opt.results = &serial_results;
  SweepOptions parallel_opt;
  parallel_opt.jobs = 4;
  parallel_opt.results = &parallel_results;

  SweepRunner runner;
  (void)runner.sweep(compiled, counts, base, serial_opt);
  (void)runner.sweep(compiled, counts, base, parallel_opt);

  ASSERT_EQ(serial_results.size(), parallel_results.size());
  EXPECT_EQ(digest(serial_results), digest(parallel_results));
}

}  // namespace
}  // namespace vppb::core
