// Tests for the reproduction's extensions beyond the paper's shipped
// tool: I/O modelling (the paper's stated future work), the POSIX
// threads front-end (§6: "easily adjusted"), the contention-analysis
// report, the TNF-style ring-buffer recorder mode (and why the paper
// rejects it), and the virtual library-call cost model.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "solaris/pthread_compat.hpp"
#include "solaris/solaris.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"
#include "viz/analysis.hpp"
#include "workloads/prodcons.hpp"
#include "workloads/synthetic.hpp"

namespace vppb {
namespace {

trace::Trace record(const std::function<void()>& fn) {
  sol::Program program;
  return rec::record_program(program, fn);
}

// ---------------------------------------------------------------------------
// I/O modelling

TEST(IoExtension, IoWaitSleepsWithoutBurningCpu) {
  sol::Program program;
  program.run([]() {
    sol::io_wait(SimTime::millis(10), "disk");
    auto& rt = ult::Runtime::current();
    EXPECT_EQ(rt.now(), SimTime::millis(10));
    EXPECT_EQ(rt.cpu_time(rt.current_tid()), SimTime::zero());
  });
}

TEST(IoExtension, OtherThreadsRunDuringIo) {
  // On one LWP, a thread doing I/O releases the LWP: the compute thread
  // finishes during the I/O, so the total is max(io, work), not the sum.
  sol::Program program;
  program.run([]() {
    sol::thr_create_fn(
        []() -> void* {
          sol::compute(SimTime::millis(4));
          return nullptr;
        },
        0, nullptr, "worker");
    sol::io_wait(SimTime::millis(10), "net");
    sol::join_all();
  });
  EXPECT_EQ(program.last_duration(), SimTime::millis(10));
}

TEST(IoExtension, RecordedAndReplayedAsDeviceDelay) {
  const trace::Trace t = record([]() {
    sol::compute(SimTime::millis(2));
    sol::io_wait(SimTime::millis(6), "disk");
    sol::compute(SimTime::millis(2));
  });
  // The op reaches the log with the device object.
  bool seen = false;
  for (const auto& r : t.records) {
    if (r.op == trace::Op::kIoWait) {
      EXPECT_EQ(r.obj.kind, trace::ObjKind::kIo);
      EXPECT_EQ(r.obj.id, 1u);
      seen = true;
    }
  }
  ASSERT_TRUE(seen);
  // The compiler turns it into a delay, not compute demand.
  const core::CompiledTrace c = core::compile(t);
  EXPECT_EQ(c.thread(1).total_cpu, SimTime::millis(4));
  // And the simulator reproduces the wall time on any CPU count.
  for (int cpus : {1, 4}) {
    core::SimConfig cfg;
    cfg.hw.cpus = cpus;
    const core::SimResult r = core::simulate(t, cfg);
    EXPECT_EQ(r.total, SimTime::millis(10)) << cpus;
    EXPECT_EQ(r.threads.at(1).sleeping_time, SimTime::millis(6)) << cpus;
  }
}

TEST(IoExtension, IoOverlapsWithComputeAcrossCpus) {
  // Two threads alternating compute and I/O: with 2 CPUs (and even with
  // 1, since I/O does not hold a CPU) the device time overlaps compute.
  const trace::Trace t = record([]() {
    for (int i = 0; i < 2; ++i) {
      sol::thr_create_fn(
          []() -> void* {
            for (int k = 0; k < 3; ++k) {
              sol::compute(SimTime::millis(2));
              sol::io_wait(SimTime::millis(2), "disk");
            }
            return nullptr;
          },
          0, nullptr, "io_worker");
    }
    sol::join_all();
  });
  core::SimConfig cfg;
  cfg.hw.cpus = 2;
  const core::SimResult r = core::simulate(t, cfg);
  // Perfect overlap would be 12ms (each thread: 6 compute + 6 io,
  // interleaved); serialization of everything would be 24ms.
  EXPECT_LT(r.total, SimTime::millis(15));
  r.validate();
}

TEST(IoExtension, DistinctDevicesGetDistinctIds) {
  const trace::Trace t = record([]() {
    sol::io_wait(SimTime::millis(1), "disk");
    sol::io_wait(SimTime::millis(1), "net");
    sol::io_wait(SimTime::millis(1), "disk");
  });
  std::set<std::uint32_t> ids;
  for (const auto& r : t.records) {
    if (r.op == trace::Op::kIoWait && r.phase == trace::Phase::kCall)
      ids.insert(r.obj.id);
  }
  EXPECT_EQ(ids.size(), 2u);
}

// ---------------------------------------------------------------------------
// POSIX threads front-end

TEST(PthreadCompat, CreateJoinRoundTrip) {
  sol::Program program;
  program.run([]() {
    sol::vppb_pthread_t tid = 0;
    auto worker = [](void* arg) -> void* {
      sol::compute(SimTime::millis(1));
      return arg;
    };
    ASSERT_EQ(sol::vppb_pthread_create(&tid, nullptr, worker,
                                       reinterpret_cast<void*>(7)),
              sol::SOL_OK);
    void* ret = nullptr;
    ASSERT_EQ(sol::vppb_pthread_join(tid, &ret), sol::SOL_OK);
    EXPECT_EQ(ret, reinterpret_cast<void*>(7));
  });
}

TEST(PthreadCompat, AttributesMapToSolarisFlags) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {
    sol::vppb_pthread_attr_t attr;
    sol::vppb_pthread_attr_init(&attr);
    sol::vppb_pthread_attr_setscope_system(&attr, true);  // bound
    sol::vppb_pthread_t tid = 0;
    sol::vppb_pthread_create(&tid, &attr,
                             [](void*) -> void* { return nullptr; }, nullptr);
    sol::vppb_pthread_join(tid, nullptr);
  });
  const trace::ThreadMeta* meta = t.find_thread(4);
  ASSERT_NE(meta, nullptr);
  EXPECT_TRUE(meta->bound);
}

TEST(PthreadCompat, MutexCondSemWorkAndRecord) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {
    sol::vppb_pthread_mutex_t m{};
    sol::vppb_pthread_cond_t c{};
    sol::vppb_sem_t sem{};
    sol::vppb_pthread_mutex_init(&m);
    sol::vppb_pthread_cond_init(&c);
    sol::vppb_sem_init(&sem, 0, 1);

    EXPECT_EQ(sol::vppb_sem_wait(&sem), sol::SOL_OK);
    EXPECT_EQ(sol::vppb_sem_trywait(&sem), sol::SOL_EBUSY);
    sol::vppb_sem_post(&sem);

    bool ready = false;
    sol::vppb_pthread_t tid = 0;
    struct Ctx {
      sol::vppb_pthread_mutex_t* m;
      sol::vppb_pthread_cond_t* c;
      bool* ready;
    } ctx{&m, &c, &ready};
    sol::vppb_pthread_create(
        &tid, nullptr,
        [](void* arg) -> void* {
          auto* x = static_cast<Ctx*>(arg);
          sol::vppb_pthread_mutex_lock(x->m);
          *x->ready = true;
          sol::vppb_pthread_cond_signal(x->c);
          sol::vppb_pthread_mutex_unlock(x->m);
          return nullptr;
        },
        &ctx);
    sol::vppb_pthread_mutex_lock(&m);
    while (!ready) sol::vppb_pthread_cond_wait(&c, &m);
    sol::vppb_pthread_mutex_unlock(&m);
    sol::vppb_pthread_join(tid, nullptr);

    sol::vppb_sem_destroy(&sem);
    sol::vppb_pthread_cond_destroy(&c);
    sol::vppb_pthread_mutex_destroy(&m);
  });
  // The pthread calls are recorded through the same probes: the log has
  // the solaris ops and replays fine.
  const auto stats = trace::compute_stats(t);
  EXPECT_GT(stats.per_op.at(trace::Op::kMutexLock), 0u);
  EXPECT_GT(stats.per_op.at(trace::Op::kCondSignal), 0u);
  EXPECT_GT(stats.per_op.at(trace::Op::kSemaWait), 0u);
  core::SimConfig cfg;
  cfg.hw.cpus = 2;
  EXPECT_NO_THROW(core::simulate(t, cfg));
}

TEST(PthreadCompat, RwlockAndYield) {
  sol::Program program;
  program.run([]() {
    sol::vppb_pthread_rwlock_t rw{};
    sol::vppb_pthread_rwlock_init(&rw);
    EXPECT_EQ(sol::vppb_pthread_rwlock_rdlock(&rw), sol::SOL_OK);
    sol::vppb_pthread_rwlock_unlock(&rw);
    EXPECT_EQ(sol::vppb_pthread_rwlock_wrlock(&rw), sol::SOL_OK);
    sol::vppb_pthread_rwlock_unlock(&rw);
    sol::vppb_pthread_rwlock_destroy(&rw);
    EXPECT_EQ(sol::vppb_sched_yield(), sol::SOL_OK);
    EXPECT_EQ(sol::vppb_pthread_self(), 1);
  });
}

// ---------------------------------------------------------------------------
// Contention analysis

TEST(Analysis, FindsTheHotMutex) {
  workloads::ProdConsParams p;
  p.producers = 20;
  p.consumers = 10;
  const trace::Trace t = record([&p]() { workloads::prodcons_naive(p); });
  core::SimConfig cfg;
  cfg.hw.cpus = 8;
  const core::SimResult r = core::simulate(t, cfg);
  const viz::AnalysisReport report = viz::analyze(r, t);
  ASSERT_NE(report.hottest(), nullptr);
  EXPECT_EQ(report.hottest()->obj.kind, trace::ObjKind::kMutex);
  EXPECT_GT(report.hottest()->distinct_threads, 10u)
      << "the buffer mutex blocks producers AND consumers";
  EXPECT_FALSE(report.hottest()->source_lines.empty());
  const std::string text = report.to_string();
  EXPECT_NE(text.find("mutex#"), std::string::npos);
  EXPECT_NE(text.find("prodcons.cpp"), std::string::npos);
}

TEST(Analysis, AverageParallelismReflectsSerialization) {
  workloads::ProdConsParams p;
  p.producers = 20;
  p.consumers = 10;
  const trace::Trace naive = record([&p]() { workloads::prodcons_naive(p); });
  const trace::Trace tuned = record([&p]() { workloads::prodcons_tuned(p); });
  core::SimConfig cfg;
  cfg.hw.cpus = 8;
  const auto rn = viz::analyze(core::simulate(naive, cfg), naive);
  const auto rt = viz::analyze(core::simulate(tuned, cfg), tuned);
  EXPECT_LT(rn.avg_running, 1.6) << "naive: barely more than one running";
  EXPECT_GT(rt.avg_running, 5.0) << "tuned: most CPUs busy";
}

TEST(Analysis, CleanProgramHasNoHotspots) {
  const trace::Trace t = record([]() {
    workloads::fork_join(4, SimTime::millis(5));
  });
  core::SimConfig cfg;
  cfg.hw.cpus = 4;
  const viz::AnalysisReport report = viz::analyze(core::simulate(t, cfg), t);
  // Only the join events exist and main's blocking on them is expected;
  // no sync object accumulates meaningful contention.
  for (const auto& oc : report.contention) {
    if (oc.obj.kind != trace::ObjKind::kThread) {
      EXPECT_TRUE(oc.total_blocked.is_zero());
    }
  }
  EXPECT_FALSE(report.utilization.empty());
}

// ---------------------------------------------------------------------------
// TNF-style ring buffer (why the paper keeps everything in memory)

TEST(RingBuffer, OldRecordsAreLost) {
  rec::Recorder::Options opts;
  opts.ring_capacity = 20;
  sol::Program program;
  rec::Recorder recorder(opts);
  {
    rec::Recorder::Scope scope(recorder);
    program.run([]() { workloads::fork_join(8, SimTime::millis(1)); });
  }
  EXPECT_GT(recorder.dropped_records(), 0u);
  const trace::Trace t = recorder.finish(program.last_duration());
  EXPECT_LE(t.records.size(), 21u);  // ring + the end_collect marker
  // The truncated log is not replayable in general: the prefix with the
  // creates/locks is gone.
  EXPECT_THROW(
      {
        t.validate();
        core::simulate(t, core::SimConfig{});
      },
      Error);
}

TEST(RingBuffer, UnboundedKeepsEverything) {
  rec::Recorder::Options opts;
  opts.ring_capacity = 0;
  sol::Program program;
  rec::Recorder recorder(opts);
  {
    rec::Recorder::Scope scope(recorder);
    program.run([]() { workloads::fork_join(8, SimTime::millis(1)); });
  }
  EXPECT_EQ(recorder.dropped_records(), 0u);
}

// ---------------------------------------------------------------------------
// thr_suspend / thr_continue

TEST(Suspend, RunnableThreadStopsUntilContinued) {
  sol::Program program;
  program.run([]() {
    int progress = 0;
    sol::thread_t tid = 0;
    sol::thr_create_fn(
        [&progress]() -> void* {
          ++progress;
          sol::thr_yield();
          ++progress;
          return nullptr;
        },
        0, &tid);
    ASSERT_EQ(sol::thr_suspend(tid), sol::SOL_OK);
    sol::thr_yield();
    EXPECT_EQ(progress, 0) << "suspended before it ever ran";
    ASSERT_EQ(sol::thr_continue(tid), sol::SOL_OK);
    sol::join_all();
    EXPECT_EQ(progress, 2);
  });
}

TEST(Suspend, CreateSuspendedFlag) {
  sol::Program program;
  program.run([]() {
    int ran = 0;
    sol::thread_t tid = 0;
    sol::thr_create_fn(
        [&ran]() -> void* {
          ++ran;
          return nullptr;
        },
        sol::THR_SUSPENDED, &tid);
    sol::thr_yield();
    EXPECT_EQ(ran, 0);
    EXPECT_TRUE(ult::Runtime::current().is_suspended(tid));
    sol::thr_continue(tid);
    sol::join_all();
    EXPECT_EQ(ran, 1);
  });
}

TEST(Suspend, BlockedThreadSuspendsAtWakeup) {
  sol::Program program;
  program.run([]() {
    sol::Semaphore sem(0u);
    int after_wait = 0;
    sol::thread_t tid = 0;
    sol::thr_create_fn(
        [&]() -> void* {
          sem.wait();
          ++after_wait;
          return nullptr;
        },
        0, &tid);
    sol::thr_yield();  // worker blocks on the semaphore
    sol::thr_suspend(tid);
    sem.post();        // wake -> immediately suspended
    sol::thr_yield();
    EXPECT_EQ(after_wait, 0);
    sol::thr_continue(tid);
    sol::join_all();
    EXPECT_EQ(after_wait, 1);
  });
}

TEST(Suspend, SuspendedForeverIsDeadlock) {
  sol::Program program;
  EXPECT_THROW(program.run([]() {
                 sol::thread_t tid = 0;
                 sol::thr_create_fn([]() -> void* { return nullptr; },
                                    sol::THR_SUSPENDED, &tid);
                 sol::thr_join(tid, nullptr, nullptr);  // never continued
               }),
               Error);
}

TEST(Suspend, ReplayedByTheSimulator) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {
    sol::thread_t tid = 0;
    sol::thr_create_fn(
        []() -> void* {
          sol::compute(SimTime::millis(5));
          return nullptr;
        },
        sol::THR_SUSPENDED, &tid, "late_starter");
    sol::compute(SimTime::millis(3));
    sol::thr_continue(tid);
    sol::join_all();
  });
  // On any CPU count the worker cannot start before main's continue at
  // 3ms, so the total is always >= 8ms.
  for (int cpus : {1, 2, 4}) {
    core::SimConfig cfg;
    cfg.hw.cpus = cpus;
    const core::SimResult r = core::simulate(t, cfg);
    EXPECT_EQ(r.total, SimTime::millis(8)) << cpus;
    r.validate();
  }
}

// ---------------------------------------------------------------------------
// Virtual library-call cost model

TEST(OpCosts, ChargedIntoTheTraceAndScaledWhenBound) {
  sol::Program::Options opts;
  opts.op_costs.sync = SimTime::micros(10);
  opts.op_costs.create = SimTime::micros(100);
  sol::Program program(opts);
  const trace::Trace t = rec::record_program(program, []() {
    sol::Mutex m;
    m.lock();
    m.unlock();
  });
  const core::CompiledTrace c = core::compile(t);
  // init + lock + unlock + destroy = 4 sync ops at 10us.
  EXPECT_EQ(c.thread(1).total_cpu, SimTime::micros(40));

  // Replaying the same costs with a bound main thread scales them 5.9x.
  core::SimConfig cfg;
  core::ThreadPolicy pol;
  pol.override_binding = true;
  pol.binding = core::Binding::kBoundLwp;
  cfg.sched.thread_policy[1] = pol;
  const core::SimResult bound = core::simulate(t, cfg);
  EXPECT_EQ(bound.total, SimTime::micros(40).scaled(5.9));
}

TEST(OpCosts, DefaultIsZeroCost) {
  const trace::Trace t = record([]() {
    sol::Mutex m;
    m.lock();
    m.unlock();
  });
  EXPECT_EQ(t.duration(), SimTime::zero());
}

}  // namespace
}  // namespace vppb
