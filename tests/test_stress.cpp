// Stress and scale tests: many threads, many objects, long event chains
// — the regimes §4 worries about ("fine granularity generates more
// synchronization events, and thus larger log files").
#include <gtest/gtest.h>

#include <chrono>

#include "core/engine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "trace/binary.hpp"
#include "trace/io.hpp"
#include "workloads/prodcons.hpp"

namespace vppb {
namespace {

TEST(Stress, FourHundredThreadsRecordAndReplay) {
  workloads::ProdConsParams p;
  p.producers = 260;
  p.consumers = 130;
  p.items_per_producer = 2;
  sol::Program program;
  const trace::Trace t = rec::record_program(
      program, [&p]() { workloads::prodcons_tuned(p); });
  EXPECT_EQ(t.threads.size(), 391u);  // main + producers + consumers
  core::SimConfig cfg;
  cfg.hw.cpus = 8;
  cfg.build_timeline = false;
  const core::SimResult r = core::simulate(t, cfg);
  EXPECT_GT(r.speedup, 5.0);
}

TEST(Stress, DeepLockChain) {
  // A convoy: 64 threads queue on one mutex; the handoff chain must
  // preserve FIFO order end to end.
  sol::Program program;
  std::vector<int> order;
  program.run([&order]() {
    sol::Mutex m;
    m.lock();
    for (int i = 0; i < 64; ++i) {
      sol::thr_create_fn(
          [&m, &order, i]() -> void* {
            sol::ScopedLock lock(m);
            order.push_back(i);
            return nullptr;
          },
          0, nullptr, "conveyee");
    }
    sol::thr_yield();  // all 64 block on the mutex in creation order
    m.unlock();
    sol::join_all();
  });
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Stress, ManyDistinctObjects) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {
    std::vector<std::unique_ptr<sol::Mutex>> mutexes;
    std::vector<std::unique_ptr<sol::Semaphore>> semas;
    for (int i = 0; i < 200; ++i) {
      mutexes.push_back(std::make_unique<sol::Mutex>());
      semas.push_back(std::make_unique<sol::Semaphore>(1u));
    }
    for (int round = 0; round < 3; ++round) {
      for (int i = 0; i < 200; ++i) {
        sol::ScopedLock lock(*mutexes[static_cast<std::size_t>(i)]);
        semas[static_cast<std::size_t>(i)]->wait();
        semas[static_cast<std::size_t>(i)]->post();
      }
    }
  });
  EXPECT_EQ(sol::object_count(trace::ObjKind::kMutex), 200u)
      << "exactly one id per created mutex";
  const core::SimResult r = core::simulate(t, core::SimConfig{});
  r.validate();
}

TEST(Stress, HundredThousandRecordSimulationFinishesQuickly) {
  workloads::ProdConsParams p;
  p.producers = 100;
  p.consumers = 50;
  p.items_per_producer = 50;
  sol::Program program;
  const trace::Trace t = rec::record_program(
      program, [&p]() { workloads::prodcons_tuned(p); });
  EXPECT_GT(t.records.size(), 100000u);
  core::SimConfig cfg;
  cfg.hw.cpus = 8;
  cfg.build_timeline = false;
  const auto t0 = std::chrono::steady_clock::now();
  const core::SimResult r = core::simulate(t, cfg);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GT(r.speedup, 5.0);
  EXPECT_LT(secs, 20.0) << "simulation throughput regressed badly";
}

TEST(Stress, BigTraceBinaryRoundTrip) {
  workloads::ProdConsParams p;
  p.producers = 60;
  p.consumers = 30;
  sol::Program program;
  const trace::Trace t = rec::record_program(
      program, [&p]() { workloads::prodcons_tuned(p); });
  const auto bytes = trace::to_binary(t);
  const trace::Trace back = trace::from_binary(bytes);
  EXPECT_EQ(back.records.size(), t.records.size());
  EXPECT_EQ(back.duration(), t.duration());
}

TEST(Stress, RepeatedRunsAreIndependent) {
  // Global state (object ids, thread registry) must fully reset between
  // Program::run calls: 20 consecutive runs give identical traces.
  std::string first;
  for (int i = 0; i < 20; ++i) {
    sol::Program program;
    const trace::Trace t = rec::record_program(program, []() {
      sol::Mutex m;
      sol::Semaphore s(1u);
      sol::thr_create_fn(
          [&]() -> void* {
            sol::ScopedLock lock(m);
            s.wait();
            s.post();
            return nullptr;
          },
          0, nullptr, "w");
      sol::join_all();
    });
    const std::string text = trace::to_text(t);
    if (i == 0) {
      first = text;
    } else {
      ASSERT_EQ(text, first) << "run " << i << " diverged";
    }
  }
}

}  // namespace
}  // namespace vppb
