// End-to-end integration tests: the complete fig. 1 workflow (program →
// Recorder → log file → Simulator → Visualizer), the §5 case study, and
// failure injection on every stage boundary.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/engine.hpp"
#include "machine/machine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "viz/visualizer.hpp"
#include "workloads/prodcons.hpp"
#include "workloads/splash.hpp"
#include "workloads/synthetic.hpp"

namespace vppb {
namespace {

TEST(Workflow, Fig1EndToEndThroughLogFile) {
  // (a)-(d): write, execute monitored, store the recorded information.
  sol::Program program;
  const trace::Trace recorded = rec::record_program(program, []() {
    workloads::ocean(workloads::SplashParams{4, 0.02});
  });
  const std::string path = testing::TempDir() + "/fig1_workflow.trace";
  trace::save_file(recorded, path);

  // (e)-(g): load the log, configure hardware + scheduling, simulate.
  const trace::Trace loaded = trace::load_file(path);
  core::SimConfig cfg;
  cfg.hw.cpus = 4;
  cfg.hw.comm_delay = SimTime::micros(10);
  const core::SimResult predicted = core::simulate(loaded, cfg);
  EXPECT_GT(predicted.speedup, 2.5);

  // (h): inspect the predicted execution.
  viz::Visualizer viz(predicted, loaded);
  EXPECT_GT(viz.event_count(), 0u);
  const std::string svg = viz::render_svg(viz, viz::RenderOptions{});
  EXPECT_GT(svg.size(), 1000u);

  // The developer clicks an event and lands on a source line in the
  // workload implementation.
  bool found_source = false;
  for (std::size_t i = 0; i < viz.event_count(); ++i) {
    if (!viz.source_location(i).empty()) {
      EXPECT_NE(viz.source_location(i).find(":"), std::string::npos);
      found_source = true;
      break;
    }
  }
  EXPECT_TRUE(found_source);
  std::remove(path.c_str());
}

TEST(Workflow, Section5CaseStudyNumbers) {
  workloads::ProdConsParams params;
  params.producers = 50;
  params.consumers = 25;

  sol::Program p1;
  const trace::Trace naive = rec::record_program(
      p1, [&params]() { workloads::prodcons_naive(params); });
  const double naive_speedup = core::predict_speedup(naive, 8);
  EXPECT_LT(naive_speedup, 1.15)
      << "paper: the naive program ran only 2.2% faster on 8 CPUs";

  sol::Program p2;
  const trace::Trace tuned = rec::record_program(
      p2, [&params]() { workloads::prodcons_tuned(params); });
  const double tuned_speedup = core::predict_speedup(tuned, 8);
  EXPECT_GT(tuned_speedup, 6.5) << "paper: 7.75x after the fix";

  machine::MachineConfig mc;
  mc.cpus = 8;
  mc.repetitions = 3;
  const machine::MachineResult real = machine::execute(tuned, mc);
  const double error =
      std::abs(prediction_error(real.speedup_mid, tuned_speedup));
  EXPECT_LT(error, 0.06) << "paper: 1.9% error on the tuned program";
}

TEST(Workflow, SameLogManyConfigurations) {
  // The tool's selling point: one monitored execution, any number of
  // what-if questions.
  sol::Program program;
  const trace::Trace log = rec::record_program(program, []() {
    workloads::lu(workloads::SplashParams{8, 0.1});
  });
  double prev = 0.0;
  for (int cpus = 1; cpus <= 16; cpus *= 2) {
    const double s = core::predict_speedup(log, cpus);
    EXPECT_GE(s, prev - 1e-9) << cpus;
    prev = s;
  }
  // And scheduling what-ifs on the same log:
  core::SimConfig two_lwps;
  two_lwps.hw.cpus = 8;
  two_lwps.sched.lwps = 2;
  EXPECT_LE(core::simulate(log, two_lwps).speedup, 2.01);
}

TEST(Workflow, RecordingDoesNotPerturbVirtualPrograms) {
  // Intrusion check, virtual mode: identical duration with and without
  // the recorder attached (the real-mode overhead is bench_overhead's
  // business).
  auto body = []() { workloads::radix(workloads::SplashParams{4, 0.05}); };
  sol::Program bare;
  bare.run(body);
  sol::Program monitored;
  const trace::Trace t = rec::record_program(monitored, body);
  EXPECT_EQ(bare.last_duration(), monitored.last_duration());
  EXPECT_EQ(t.duration(), bare.last_duration());
}

TEST(FailureInjection, CorruptLogLinesRejected) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {
    workloads::fork_join(2, SimTime::millis(1));
  });
  std::string text = trace::to_text(t);
  // Truncate mid-line: the reader must fail loudly, not misparse.
  EXPECT_THROW(trace::from_text(text.substr(0, text.size() / 2)), Error);
  // Inject an impossible timestamp ordering.
  std::string reversed = text;
  const auto pos = reversed.rfind("\nrec ");
  reversed.insert(pos + 1, "rec 1 1 C thr_yield none 0 0 0 0\n");
  EXPECT_THROW(trace::from_text(reversed), Error);
}

TEST(FailureInjection, ReplayMismatchesAreDiagnosed) {
  // A log claiming a successful join on a thread that blocks forever
  // (its recorded sema_wait succeeded, but no post exists to replay).
  EXPECT_THROW(
      core::simulate(trace::from_text(
                         "thread 1 main main 0 0\n"
                         "thread 4 w w 0 0\n"
                         "rec 0 1 C start_collect none 0 0 0 0\n"
                         "rec 500 4 C sema_wait sema 1 0 0 0\n"
                         "rec 900 4 R sema_wait sema 1 0 0 0\n"
                         "rec 950 4 C thr_exit thread 4 0 0 0\n"
                         "rec 1000 1 C thr_join thread 4 0 0 0\n"
                         "rec 2000 1 R thr_join thread 4 4 0 0\n"
                         "rec 3000 1 C thr_exit thread 1 0 0 0\n"),
                     core::SimConfig{}),
      Error);
  // An unlock of a mutex the thread never locked.
  EXPECT_THROW(
      core::simulate(trace::from_text(
                         "thread 1 main main 0 0\n"
                         "rec 0 1 C start_collect none 0 0 0 0\n"
                         "rec 1000 1 C mtx_unlock mutex 1 0 0 0\n"
                         "rec 2000 1 R mtx_unlock mutex 1 0 0 0\n"
                         "rec 3000 1 C thr_exit thread 1 0 0 0\n"),
                     core::SimConfig{}),
      Error);
}

TEST(FailureInjection, SpinningProgramDetectedNotHung) {
  // Paper §6: Barnes/Radiosity/... spin on a variable and cannot be
  // recorded on one LWP; the runtime reports the livelock.
  sol::Program::Options opts;
  opts.livelock_horizon = SimTime::seconds(2.0);
  sol::Program program(opts);
  EXPECT_THROW(
      program.run([]() {
        bool flag = false;
        sol::thr_create_fn(
            [&flag]() -> void* {
              flag = true;
              return nullptr;
            },
            0, nullptr, "setter");
        // Spin without ever calling the thread library: the setter never
        // runs on the single LWP.
        while (!flag) sol::compute(SimTime::millis(10));
        sol::join_all();
      }),
      Error);
}

TEST(FailureInjection, DeadlockedProgramDetectedNotHung) {
  sol::Program program;
  EXPECT_THROW(program.run([]() {
                 sol::Semaphore never(0u);
                 never.wait();  // nobody will post
               }),
               Error);
}

TEST(FailureInjection, LockOrderInversionDeadlockDetected) {
  sol::Program program;
  EXPECT_THROW(program.run([]() {
                 sol::Mutex a, b;
                 a.lock();
                 sol::thr_create_fn(
                     [&]() -> void* {
                       b.lock();
                       sol::thr_yield();
                       a.lock();  // held by main
                       a.unlock();
                       b.unlock();
                       return nullptr;
                     },
                     0, nullptr, "other");
                 sol::thr_yield();
                 b.lock();  // held by the worker -> cycle
                 b.unlock();
                 a.unlock();
                 sol::join_all();
               }),
               Error);
}

TEST(Workflow, WildcardJoinMismatchTolerated) {
  // Paper §6: a wildcard join may reap a different thread than in the
  // recorded execution; the replay must still complete.
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {
    auto slow = []() -> void* {
      sol::compute(SimTime::millis(20));
      return nullptr;
    };
    auto fast = []() -> void* {
      sol::compute(SimTime::millis(1));
      return nullptr;
    };
    sol::thr_create_fn(slow, 0, nullptr, "slow");
    sol::thr_create_fn(fast, 0, nullptr, "fast");
    // On one LWP the creation-order thread finishes first; on many CPUs
    // the fast one exits first, so the wildcard join order flips.
    sol::thr_join(0, nullptr, nullptr);
    sol::thr_join(0, nullptr, nullptr);
  });
  for (int cpus : {1, 2, 4}) {
    core::SimConfig cfg;
    cfg.hw.cpus = cpus;
    const core::SimResult r = core::simulate(t, cfg);
    r.validate();
  }
}

TEST(Workflow, BoundThreadsEndToEnd) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {
    for (int i = 0; i < 3; ++i) {
      sol::thr_create_fn(
          []() -> void* {
            sol::compute(SimTime::millis(5));
            return nullptr;
          },
          sol::THR_BOUND, nullptr, "bound_worker");
    }
    sol::join_all();
  });
  // Bound flags survive the log and reach the simulator's policy layer.
  const core::CompiledTrace c = core::compile(t);
  int bound = 0;
  for (const auto& [tid, ct] : c.threads) {
    if (ct.bound) ++bound;
  }
  EXPECT_EQ(bound, 3);
  core::SimConfig cfg;
  cfg.hw.cpus = 3;
  const core::SimResult r = core::simulate(t, cfg);
  EXPECT_NEAR(r.speedup, 3.0, 0.2);
}

}  // namespace
}  // namespace vppb
