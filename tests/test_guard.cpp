// Resource-governance tests (`ctest -L guard`): RunGuard budget trips
// are typed and prompt, cancellation drains cleanly, an attached but
// unlimited guard is digest-invisible, the TraceCache charges the real
// compiled footprint and quarantines poison traces, the vppbd watchdog
// rescues stuck requests, and the client's retry backoff respects the
// request deadline budget.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/guard.hpp"
#include "core/sweep.hpp"
#include "golden_cases.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "server/trace_cache.hpp"
#include "trace/binary.hpp"
#include "trace/io.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"
#include "workloads/synthetic.hpp"

namespace vppb {
namespace {

using core::BudgetExceeded;
using core::CompiledTrace;
using core::GuardTrip;
using core::RunGuard;
using core::RunLimits;
using core::SimConfig;

/// A fresh path under the system temp dir; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    static std::atomic<int> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("vppb_" + tag + "_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter.fetch_add(1))))
                .string();
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

CompiledTrace small_compiled() {
  return core::record_compiled(
      [] { workloads::fork_join(4, SimTime::millis(2)); });
}

GuardTrip trip_of(const CompiledTrace& compiled, const SimConfig& cfg,
                  const RunGuard& guard) {
  try {
    core::simulate(compiled, cfg, &guard);
  } catch (const BudgetExceeded& e) {
    return e.trip();
  }
  return GuardTrip::kNone;
}

// ---- engine budgets --------------------------------------------------------

TEST(GuardTest, StepBudgetTripsTyped) {
  const CompiledTrace compiled = small_compiled();
  RunLimits limits;
  limits.max_steps = 10;
  EXPECT_EQ(trip_of(compiled, SimConfig{}, RunGuard(limits)),
            GuardTrip::kSteps);
}

TEST(GuardTest, SimTimeBudgetTripsTyped) {
  // The workload runs ~2ms of simulated time; a 1ms ceiling must stop
  // the replay before the clock passes it.
  const CompiledTrace compiled = small_compiled();
  RunLimits limits;
  limits.max_sim_ms = 1;
  EXPECT_EQ(trip_of(compiled, SimConfig{}, RunGuard(limits)),
            GuardTrip::kSimTime);
}

TEST(GuardTest, WallBudgetTripsTyped) {
  // Arm a 1ms wall budget, let it expire before the run starts: the
  // periodic wall checkpoint must notice, on a trace long enough
  // (> 1024 steps) to reach it mid-run rather than at the final check.
  const CompiledTrace compiled = core::record_compiled(
      [] { workloads::pipeline(8, 64, SimTime::micros(100)); });
  RunLimits limits;
  limits.max_wall_ms = 1;
  const RunGuard guard(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(trip_of(compiled, SimConfig{}, guard), GuardTrip::kWallTime);
}

TEST(GuardTest, ResultBytesBudgetTripsTyped) {
  const CompiledTrace compiled = small_compiled();
  RunLimits limits;
  limits.max_result_bytes = 1;
  EXPECT_EQ(trip_of(compiled, SimConfig{}, RunGuard(limits)),
            GuardTrip::kResultBytes);
}

TEST(GuardTest, CancelStopsCompileAndSimulate) {
  const CompiledTrace compiled = small_compiled();
  RunGuard guard;
  guard.cancel();
  try {
    core::simulate(compiled, SimConfig{}, &guard);
    FAIL() << "cancelled simulate returned";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.trip(), GuardTrip::kCancelled);
  }
}

// ---- sweeps ----------------------------------------------------------------

TEST(GuardTest, CancelledSweepDrainsAndPoolStaysUsable) {
  const CompiledTrace compiled = small_compiled();
  const std::vector<int> cpus = {1, 2, 4, 8};
  util::ThreadPool pool(2);

  core::SweepOptions opt;
  opt.pool = &pool;
  RunGuard guard;
  guard.cancel();
  opt.guard = &guard;
  EXPECT_THROW(core::sweep_cpus(compiled, cpus, SimConfig{}, opt),
               BudgetExceeded);

  // The drain left no tasks behind: the same pool immediately runs an
  // unguarded sweep whose results match a serial reference sweep.
  std::vector<core::SimResult> pooled;
  core::SweepOptions clean;
  clean.pool = &pool;
  clean.results = &pooled;
  core::sweep_cpus(compiled, cpus, SimConfig{}, clean);
  std::vector<core::SimResult> serial;
  core::SweepOptions ref;
  ref.jobs = 1;
  ref.results = &serial;
  core::sweep_cpus(compiled, cpus, SimConfig{}, ref);
  EXPECT_EQ(core::digest(pooled), core::digest(serial));
}

TEST(GuardTest, ConcurrentCancelMidSweepIsCleanEitherWay) {
  // The cancel races the sweep on purpose: whichever wins, the sweep
  // must either finish completely or unwind with kCancelled, and the
  // shared pool must stay fully usable.
  const CompiledTrace compiled = core::record_compiled(
      [] { workloads::fft(workloads::SplashParams{8, 0.2}); });
  const std::vector<int> cpus = {1, 2, 4, 8};
  util::ThreadPool pool(2);
  RunGuard guard;
  core::SweepOptions opt;
  opt.pool = &pool;
  opt.guard = &guard;
  std::thread canceller([&guard]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    guard.cancel();
  });
  bool threw = false;
  try {
    core::sweep_cpus(compiled, cpus, SimConfig{}, opt);
  } catch (const BudgetExceeded& e) {
    threw = true;
    EXPECT_EQ(e.trip(), GuardTrip::kCancelled);
  }
  canceller.join();
  (void)threw;  // either outcome is legal; cleanliness is what matters

  std::vector<core::SimResult> pooled;
  core::SweepOptions clean;
  clean.pool = &pool;
  clean.results = &pooled;
  core::sweep_cpus(compiled, cpus, SimConfig{}, clean);
  EXPECT_EQ(pooled.size(), cpus.size());
}

// ---- digest parity ---------------------------------------------------------

TEST(GuardTest, UnlimitedGuardIsDigestInvisible) {
  // The acceptance gate for the whole layer: with a guard attached but
  // every budget off, all pinned golden digests are bit-identical.
  const RunGuard guard;  // attached, unarmed
  for (const core::GoldenCase& gc : core::kGoldenCases) {
    const CompiledTrace compiled = core::record_compiled(gc.workload);
    SimConfig cfg;
    gc.configure(cfg);
    EXPECT_EQ(core::digest(core::simulate(compiled, cfg, &guard)), gc.golden)
        << gc.name;
  }
}

TEST(GuardTest, GenerousLimitsAreDigestInvisible) {
  RunLimits limits;
  limits.max_steps = 1ull << 40;
  limits.max_wall_ms = 3600 * 1000;
  limits.max_sim_ms = 3600 * 1000;
  limits.max_result_bytes = 1ull << 40;
  const RunGuard guard(limits);
  const core::GoldenCase& gc = core::kGoldenCases[0];
  const CompiledTrace compiled = core::record_compiled(gc.workload);
  SimConfig cfg;
  gc.configure(cfg);
  EXPECT_EQ(core::digest(core::simulate(compiled, cfg, &guard)), gc.golden);
}

// ---- trace cache: footprint charge + quarantine ----------------------------

TEST(CacheGovernance, BudgetChargesCompiledFootprintNotJustFileBytes) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, [] {
    workloads::fork_join(6, SimTime::millis(2));
  });
  TempFile file("footprint");
  trace::save_binary_file(t, file.path());
  const auto file_bytes = std::filesystem::file_size(file.path());

  // A budget of twice the file size: under the old file-bytes-only
  // accounting this cache would keep the entry, but the parsed records
  // and compiled steps dwarf the compact binary encoding, so the honest
  // charge must exceed the budget and the entry must not be retained.
  server::TraceCache cache(8, static_cast<std::size_t>(file_bytes) * 2);
  const auto entry = cache.get(file.path());
  EXPECT_GT(entry->bytes, static_cast<std::size_t>(file_bytes));
  const server::TraceCache::Stats s = cache.stats();
  EXPECT_GT(entry->bytes, static_cast<std::size_t>(file_bytes) * 2);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.evictions, 1u);
}

TEST(CacheGovernance, QuarantineTripsThenDecays) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, [] {
    workloads::fork_join(2, SimTime::millis(1));
  });
  TempFile file("poison");
  trace::save_binary_file(t, file.path());

  server::TraceCache cache(8, 1u << 30);
  cache.configure_quarantine(2, 200);
  EXPECT_NO_THROW(cache.check_poisoned(file.path()));
  cache.record_strike(file.path());
  EXPECT_NO_THROW(cache.check_poisoned(file.path()));  // 1 strike: admissible
  cache.record_strike(file.path());
  EXPECT_THROW(cache.check_poisoned(file.path()), server::Poisoned);
  EXPECT_THROW(cache.get(file.path()), server::Poisoned);
  {
    const server::TraceCache::Stats s = cache.stats();
    EXPECT_EQ(s.poison_strikes, 2u);
    EXPECT_EQ(s.quarantine_trips, 1u);
    EXPECT_GE(s.poison_rejects, 2u);
    EXPECT_EQ(s.quarantined, 1u);
  }

  // Window over: the key decays to half its strikes and is admissible
  // again — and one more strike re-trips (1 + 1 >= 2), so a repeat
  // offender goes back behind the breaker faster than a newcomer.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_NO_THROW(cache.check_poisoned(file.path()));
  EXPECT_EQ(cache.stats().quarantined, 0u);
  cache.record_strike(file.path());
  EXPECT_THROW(cache.check_poisoned(file.path()), server::Poisoned);
}

// ---- server governance -----------------------------------------------------

server::ServerOptions unix_options(const std::string& sock) {
  server::ServerOptions opt;
  opt.unix_path = sock;
  opt.jobs = 2;
  return opt;
}

TEST(ServerGovernance, StepBudgetIsTypedAndStrikesLeadToQuarantine) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, [] {
    workloads::fork_join(4, SimTime::millis(2));
  });
  TempFile trace_file("budget");
  trace::save_binary_file(t, trace_file.path());
  TempFile sock("budget_sock");

  server::ServerOptions opt = unix_options(sock.path());
  opt.max_steps = 10;
  opt.poison_strikes = 2;
  opt.quarantine_ms = 300;
  server::Server srv(opt);
  srv.start();

  server::Client client = server::Client::connect_unix(sock.path());
  server::Request req;
  req.type = server::ReqType::kSimulate;
  req.trace_path = trace_file.path();
  req.cpus = 2;

  const auto t0 = std::chrono::steady_clock::now();
  const server::Response r1 = client.call(req);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(r1.status, server::Status::kBudgetExceeded) << r1.error;
  EXPECT_LT(elapsed, std::chrono::seconds(5));

  const server::Response r2 = client.call(req);
  EXPECT_EQ(r2.status, server::Status::kBudgetExceeded) << r2.error;

  // Two strikes tripped the breaker: answered pre-dispatch, so the
  // request counters show no new simulate dispatch outcome.
  const server::Response r3 = client.call(req);
  EXPECT_EQ(r3.status, server::Status::kPoisoned) << r3.error;

  server::Request stats;
  stats.type = server::ReqType::kStats;
  const server::Response s = client.call(stats);
  EXPECT_EQ(s.stats.budget_kills, 2u);
  EXPECT_EQ(s.stats.poisoned, 1u);
  EXPECT_EQ(s.stats.poison_strikes, 2u);
  EXPECT_EQ(s.stats.quarantined, 1u);

  // After the quarantine window the content decays back to admissible:
  // the next attempt reaches the engine again (and trips the budget
  // again) instead of being rejected at the door.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const server::Response r4 = client.call(req);
  EXPECT_EQ(r4.status, server::Status::kBudgetExceeded) << r4.error;
  srv.stop();
}

TEST(ServerGovernance, WatchdogCancelsCooperativeDelayWithinBound) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, [] {
    workloads::fork_join(2, SimTime::millis(1));
  });
  TempFile trace_file("wdog");
  trace::save_binary_file(t, trace_file.path());
  TempFile sock("wdog_sock");

  // The injected delay would stall the worker 30 seconds; the watchdog
  // must convert it to a typed budget error at the ~50ms wall ceiling.
  util::FaultPlan plan = util::FaultPlan::parse("delay-ms:1:1:30000");
  server::ServerOptions opt = unix_options(sock.path());
  opt.faults = &plan;
  opt.max_wall_ms = 50;
  opt.watchdog_interval_ms = 5;
  server::Server srv(opt);
  srv.start();

  server::Client client = server::Client::connect_unix(sock.path());
  server::Request req;
  req.type = server::ReqType::kSimulate;
  req.trace_path = trace_file.path();
  const auto t0 = std::chrono::steady_clock::now();
  const server::Response r = client.call(req);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(r.status, server::Status::kBudgetExceeded) << r.error;
  EXPECT_LT(elapsed, std::chrono::seconds(5));

  server::Request stats;
  stats.type = server::ReqType::kStats;
  const server::Response s = client.call(stats);
  EXPECT_GE(s.stats.watchdog_cancels, 1u);
  EXPECT_GE(s.stats.budget_kills, 1u);
  EXPECT_EQ(s.stats.watchdog_replacements, 0u);
  srv.stop();
}

TEST(ServerGovernance, WedgedWorkerIsAbandonedAndReplaced) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, [] {
    workloads::fork_join(2, SimTime::millis(1));
  });
  TempFile trace_file("wedge");
  trace::save_binary_file(t, trace_file.path());
  TempFile sock("wedge_sock");

  // An uncancellable 500ms wedge with a 30ms wall ceiling and a 40ms
  // escalation grace: the cooperative rung fails, so the watchdog must
  // answer the client itself well before the wedge ends, and replace
  // the worker it wrote off.
  util::FaultPlan plan = util::FaultPlan::parse("wedge-ms:1:1:500");
  server::ServerOptions opt = unix_options(sock.path());
  opt.faults = &plan;
  // jobs must be >= 2: a one-job pool has no background workers (post()
  // runs inline on the connection thread), and a wedge on the IO thread
  // would block the very response the watchdog writes on its behalf.
  opt.jobs = 2;
  opt.max_wall_ms = 30;
  opt.watchdog_interval_ms = 5;
  opt.watchdog_escalate_ms = 40;
  opt.poison_strikes = 0;  // isolate the escalation path from quarantine
  server::Server srv(opt);
  srv.start();

  server::Client client = server::Client::connect_unix(sock.path());
  server::Request req;
  req.type = server::ReqType::kSimulate;
  req.trace_path = trace_file.path();
  const auto t0 = std::chrono::steady_clock::now();
  const server::Response r = client.call(req);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(r.status, server::Status::kBudgetExceeded) << r.error;
  EXPECT_LT(elapsed, std::chrono::milliseconds(450));

  // The replacement worker serves the next request normally even while
  // the wedged one is still sleeping on the old task.
  const server::Response ok = client.call(req);
  EXPECT_EQ(ok.status, server::Status::kOk) << ok.error;

  server::Request stats;
  stats.type = server::ReqType::kStats;
  const server::Response s = client.call(stats);
  EXPECT_GE(s.stats.watchdog_cancels, 1u);
  EXPECT_EQ(s.stats.watchdog_replacements, 1u);
  srv.stop();
}

// ---- client backoff budget -------------------------------------------------

TEST(ClientRetry, BackoffNeverOutlivesTheDeadlineBudget) {
  TempFile sock("retry_sock");
  server::ServerOptions opt = unix_options(sock.path());
  opt.admission_limit = 0;  // every compute request is rejected overloaded
  server::Server srv(opt);
  srv.start();

  server::Client client = server::Client::connect_unix(sock.path());
  server::Request req;
  req.type = server::ReqType::kStats;
  req.deadline_ms = 120;
  server::RetryPolicy policy;
  policy.max_attempts = 50;
  policy.base_ms = 50;
  const auto t0 = std::chrono::steady_clock::now();
  const server::Response r = client.call_retry(req, policy);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(r.status, server::Status::kOverloaded);
  // Without the clamp, 49 sleeps of >= 50ms each would hold the caller
  // for multiple seconds past a 120ms budget.
  EXPECT_LE(policy.slept_ms, 120);
  EXPECT_LT(elapsed.count(), 2000);
  srv.stop();
}

}  // namespace
}  // namespace vppb
