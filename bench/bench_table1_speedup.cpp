// Regenerates the paper's Table 1: measured ("real", on the reference
// multiprocessor) and predicted speed-ups for the five SPLASH-2-style
// applications on 2, 4 and 8 processors, with the (min–max) range of
// five executions and the prediction error.
//
// Flags: --scale (problem scale), --reps, --jitter, --seed.
#include <cstdio>
#include <span>

#include "machine/validate.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/splash.hpp"

namespace {

// The paper's Table 1, for side-by-side comparison in the output.
struct PaperRow {
  const char* app;
  double real[3];
  double pred[3];
};
constexpr PaperRow kPaper[] = {
    {"Ocean", {1.97, 3.87, 6.65}, {1.96, 3.85, 6.24}},
    {"Water-spatial", {1.99, 3.95, 7.67}, {1.98, 3.91, 7.56}},
    {"FFT", {1.55, 2.14, 2.62}, {1.55, 2.14, 2.61}},
    {"Radix", {2.00, 3.99, 7.79}, {1.98, 3.95, 7.71}},
    {"LU", {1.79, 3.15, 4.82}, {1.79, 3.14, 4.81}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace vppb;

  Flags flags;
  flags.define_double("scale", 1.0, "problem-scale multiplier");
  flags.define_i64("reps", 5, "reference-machine executions per point");
  flags.define_double("jitter", 0.015, "reference-machine duration jitter");
  flags.define_i64("seed", 0x5eed, "reference-machine seed");
  flags.parse(argc, argv);

  const int cpu_counts[] = {2, 4, 8};

  machine::MachineConfig mc;
  mc.repetitions = static_cast<int>(flags.i64("reps"));
  mc.cpu_jitter = flags.dbl("jitter");
  mc.seed = static_cast<std::uint64_t>(flags.i64("seed"));

  std::printf("Table 1: measured and predicted speed-ups\n");
  std::printf("(real = middle of %d reference-machine executions, "
              "(min-max) alongside; error = (real-pred)/real)\n\n",
              mc.repetitions);

  TextTable table;
  table.header({"Application", "", "2 processors", "4 processors",
                "8 processors"});

  double worst_error = 0.0;
  int row_idx = 0;
  for (const auto& app : workloads::splash_suite()) {
    const double scale = flags.dbl("scale");
    const machine::ValidationReport report = machine::validate_workload(
        app.name,
        [&app, scale](int threads) {
          app.run(workloads::SplashParams{threads, scale});
        },
        std::span<const int>(cpu_counts), mc);

    std::vector<std::string> real_row{app.name, "Real"};
    std::vector<std::string> pred_row{"", "Pred."};
    std::vector<std::string> err_row{"", "Error"};
    std::vector<std::string> paper_row{"", "Paper"};
    for (std::size_t i = 0; i < report.points.size(); ++i) {
      const auto& p = report.points[i];
      real_row.push_back(strprintf("%.2f (%.2f-%.2f)", p.real_mid, p.real_min,
                                   p.real_max));
      pred_row.push_back(strprintf("%.2f", p.predicted));
      err_row.push_back(strprintf("%.1f%%", 100.0 * p.error));
      paper_row.push_back(strprintf("real %.2f / pred %.2f",
                                    kPaper[row_idx].real[i],
                                    kPaper[row_idx].pred[i]));
      worst_error = std::max(worst_error, std::abs(p.error));
    }
    table.row(real_row);
    table.row(pred_row);
    table.row(err_row);
    table.row(paper_row);
    table.row({"", "", "", "", ""});
    ++row_idx;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("max |error| over all points: %.1f%% (paper: 6.2%%)\n",
              100.0 * worst_error);
  return 0;
}
