// Regenerates the paper's §4 observation that "the time required for
// obtaining the predicted speed-up values, and also the graph
// visualizing the behaviour of the program, increases for large log
// files" (they experimented with logs up to 15 MB).
//
// We generate logs of growing size from a lock-heavy workload and time
// (wall clock): compile+simulate, and building the visualizer model +
// rendering.  Flags: --max-items.
#include <chrono>
#include <cstdio>

#include "core/engine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "trace/io.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "viz/visualizer.hpp"
#include "workloads/prodcons.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vppb;

  Flags flags;
  flags.define_i64("max-items", 40, "largest items-per-producer step");
  flags.parse(argc, argv);

  std::printf("Simulation/visualization time vs log size (paper §4)\n\n");
  TextTable table;
  table.header({"items/producer", "log bytes", "records", "simulate",
                "visualize", "speed-up@8"});

  for (int items = 5; items <= static_cast<int>(flags.i64("max-items"));
       items *= 2) {
    workloads::ProdConsParams params;
    params.items_per_producer = items;
    params.consumers = 75;
    sol::Program program;
    const trace::Trace t = rec::record_program(
        program, [&params]() { workloads::prodcons_tuned(params); });
    const std::string text = trace::to_text(t);

    core::SimConfig cfg;
    cfg.hw.cpus = 8;
    const auto t0 = std::chrono::steady_clock::now();
    const core::SimResult result = core::simulate(t, cfg);
    const double sim_s = seconds_since(t0);

    const auto t1 = std::chrono::steady_clock::now();
    viz::Visualizer v(result, t);
    v.compress_threads();
    const std::string svg = viz::render_svg(v, viz::RenderOptions{});
    const double viz_s = seconds_since(t1);

    table.row({strprintf("%d", items), strprintf("%zu", text.size()),
               strprintf("%zu", t.records.size()), strprintf("%.3fs", sim_s),
               strprintf("%.3fs", viz_s), strprintf("%.2f", result.speedup)});
    (void)svg;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("both columns grow with the log, as the paper reports.\n");
  return 0;
}
