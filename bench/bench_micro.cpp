// Micro-benchmarks (google-benchmark): probe cost, trace serialization,
// compilation, simulation event throughput, and visualizer rendering.
#include <benchmark/benchmark.h>

#include "core/engine.hpp"
#include "machine/machine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "trace/io.hpp"
#include "viz/visualizer.hpp"
#include "workloads/prodcons.hpp"
#include "workloads/splash.hpp"

namespace {

using namespace vppb;

trace::Trace lock_heavy_trace(int producers) {
  workloads::ProdConsParams p;
  p.producers = producers;
  p.consumers = producers / 2;
  sol::Program program;
  return rec::record_program(program,
                             [&p]() { workloads::prodcons_tuned(p); });
}

void BM_RecordLockHeavy(benchmark::State& state) {
  const int producers = static_cast<int>(state.range(0));
  std::size_t records = 0;
  for (auto _ : state) {
    const trace::Trace t = lock_heavy_trace(producers);
    records = t.records.size();
    benchmark::DoNotOptimize(t.records.data());
  }
  state.counters["records"] = static_cast<double>(records);
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(records), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_RecordLockHeavy)->Arg(20)->Arg(50);

void BM_ProbeOverheadBareVsRecorded(benchmark::State& state) {
  // The per-call cost of the probe layer itself: a tight mutex
  // lock/unlock loop with a recorder attached.
  const bool recorded = state.range(0) != 0;
  for (auto _ : state) {
    sol::Program program;
    rec::Recorder recorder;
    auto body = []() {
      sol::Mutex m;
      for (int i = 0; i < 2000; ++i) {
        m.lock();
        m.unlock();
      }
    };
    if (recorded) {
      rec::Recorder::Scope scope(recorder);
      program.run(body);
      benchmark::DoNotOptimize(recorder.records_so_far());
      (void)recorder.finish(program.last_duration());
    } else {
      program.run(body);
    }
  }
  state.SetItemsProcessed(state.iterations() * 4000);  // 2 calls per loop
}
BENCHMARK(BM_ProbeOverheadBareVsRecorded)->Arg(0)->Arg(1);

void BM_TraceTextRoundTrip(benchmark::State& state) {
  const trace::Trace t = lock_heavy_trace(40);
  for (auto _ : state) {
    const std::string text = trace::to_text(t);
    const trace::Trace back = trace::from_text(text);
    benchmark::DoNotOptimize(back.records.size());
  }
  state.counters["records"] = static_cast<double>(t.records.size());
}
BENCHMARK(BM_TraceTextRoundTrip);

void BM_Compile(benchmark::State& state) {
  const trace::Trace t = lock_heavy_trace(40);
  for (auto _ : state) {
    const core::CompiledTrace c = core::compile(t);
    benchmark::DoNotOptimize(c.threads.size());
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(t.records.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Compile);

void BM_SimulateEvents(benchmark::State& state) {
  const trace::Trace t = lock_heavy_trace(40);
  const core::CompiledTrace c = core::compile(t);
  core::SimConfig cfg;
  cfg.hw.cpus = static_cast<int>(state.range(0));
  cfg.build_timeline = false;
  for (auto _ : state) {
    const core::SimResult r = core::simulate(c, cfg);
    benchmark::DoNotOptimize(r.speedup);
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(t.records.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SimulateEvents)->Arg(1)->Arg(8);

void BM_MachineExecution(benchmark::State& state) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {
    workloads::radix(workloads::SplashParams{8, 0.2});
  });
  const core::CompiledTrace c = core::compile(t);
  machine::MachineConfig mc;
  mc.repetitions = 1;
  for (auto _ : state) {
    const machine::MachineResult r = machine::execute(c, mc);
    benchmark::DoNotOptimize(r.speedup_mid);
  }
}
BENCHMARK(BM_MachineExecution);

void BM_RenderSvg(benchmark::State& state) {
  sol::Program program;
  const trace::Trace t = rec::record_program(program, []() {
    workloads::ocean(workloads::SplashParams{4, 0.02});
  });
  core::SimConfig cfg;
  cfg.hw.cpus = 4;
  const core::SimResult result = core::simulate(t, cfg);
  for (auto _ : state) {
    viz::Visualizer v(result, t);
    const std::string svg = viz::render_svg(v, viz::RenderOptions{});
    benchmark::DoNotOptimize(svg.size());
  }
}
BENCHMARK(BM_RenderSvg);

}  // namespace

BENCHMARK_MAIN();
