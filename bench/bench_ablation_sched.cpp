// Ablations over the Simulator's §3.2 knobs, showing what each one
// contributes: the LWP count, per-thread CPU binding, bound-thread cost
// factors, communication delay, and the TS priority dynamics.
#include <cstdio>

#include "core/engine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/splash.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace vppb;

trace::Trace record(const std::function<void()>& fn) {
  sol::Program program;
  return rec::record_program(program, fn);
}

/// Recording with 1990s-Solaris-like library-call costs, so the bound
/// thread factors (x6.7 create, x5.9 sync) have recorded costs to scale.
trace::Trace record_with_op_costs(const std::function<void()>& fn) {
  sol::Program::Options opts;
  opts.op_costs.sync = SimTime::micros(3);
  opts.op_costs.create = SimTime::micros(80);
  opts.op_costs.thread_mgmt = SimTime::micros(5);
  sol::Program program(opts);
  return rec::record_program(program, fn);
}

}  // namespace

int main() {
  std::printf("Scheduling-knob ablations (paper §3.2)\n\n");

  // ---- LWP count: threads multiplexed on fewer LWPs ----
  {
    const trace::Trace t = record(
        []() { workloads::fork_join(8, SimTime::millis(40)); });
    TextTable table;
    table.header({"LWPs", "speed-up on 8 CPUs"});
    for (int lwps : {1, 2, 4, 8}) {
      core::SimConfig cfg;
      cfg.hw.cpus = 8;
      cfg.sched.lwps = lwps;
      cfg.build_timeline = false;
      table.row({strprintf("%d", lwps),
                 strprintf("%.2f", core::simulate(t, cfg).speedup)});
    }
    std::printf("A. 8 independent threads, varying the LWP knob:\n%s\n",
                table.render().c_str());
  }

  // ---- Binding threads to CPUs ----
  {
    const trace::Trace t = record(
        []() { workloads::fork_join(4, SimTime::millis(40)); });
    TextTable table;
    table.header({"binding", "speed-up on 4 CPUs"});
    for (int pinned_together : {0, 2, 4}) {
      core::SimConfig cfg;
      cfg.hw.cpus = 4;
      cfg.build_timeline = false;
      for (int i = 0; i < pinned_together; ++i) {
        core::ThreadPolicy pol;
        pol.override_binding = true;
        pol.binding = core::Binding::kBoundCpu;
        pol.cpu = 0;  // all pinned threads share CPU 0
        cfg.sched.thread_policy[4 + i] = pol;
      }
      table.row({strprintf("%d threads pinned to CPU 0", pinned_together),
                 strprintf("%.2f", core::simulate(t, cfg).speedup)});
    }
    std::printf("B. 4 independent threads, pinning some to one CPU:\n%s\n",
                table.render().c_str());
  }

  // ---- Bound-thread cost factors (create 6.7x, sync 5.9x) ----
  {
    auto body = [](long flags) {
      return [flags]() {
        auto m = std::make_shared<sol::Mutex>();
        for (int i = 0; i < 4; ++i) {
          sol::thr_create_fn(
              [m]() -> void* {
                for (int k = 0; k < 50; ++k) {
                  sol::ScopedLock lock(*m);
                  sol::compute(SimTime::micros(20));
                }
                return nullptr;
              },
              flags, nullptr, "worker");
        }
        sol::join_all();
      };
    };
    const trace::Trace unbound = record_with_op_costs(body(0));
    const trace::Trace bound = record_with_op_costs(body(sol::THR_BOUND));
    core::SimConfig cfg;
    cfg.hw.cpus = 4;
    cfg.build_timeline = false;
    const auto u = core::simulate(unbound, cfg);
    const auto b = core::simulate(bound, cfg);
    std::printf("C. lock-heavy program, unbound vs THR_BOUND threads "
                "(sync x%.1f, create x%.1f):\n",
                cfg.cost.bound_sync_factor, cfg.cost.bound_create_factor);
    std::printf("   unbound: predicted time %s   bound: %s (%.2fx slower)\n\n",
                u.total.to_string().c_str(), b.total.to_string().c_str(),
                static_cast<double>(b.total.ns()) /
                    static_cast<double>(u.total.ns()));
  }

  // ---- Communication delay ----
  {
    workloads::SplashParams p{8, 0.05};
    const trace::Trace t =
        record([&p]() { workloads::water_spatial(p); });
    TextTable table;
    table.header({"comm delay", "speed-up on 8 CPUs"});
    for (std::int64_t us : {0, 20, 100, 500}) {
      core::SimConfig cfg;
      cfg.hw.cpus = 8;
      cfg.hw.comm_delay = SimTime::micros(us);
      cfg.build_timeline = false;
      table.row({strprintf("%lldus", static_cast<long long>(us)),
                 strprintf("%.2f", core::simulate(t, cfg).speedup)});
    }
    std::printf("D. barrier-heavy program under growing communication "
                "delay:\n%s\n",
                table.render().c_str());
  }

  // ---- TS dynamics on/off with mixed interactive + batch threads ----
  {
    const trace::Trace t = record([]() {
      workloads::pipeline(3, 60, SimTime::micros(400));
    });
    for (bool dynamics : {true, false}) {
      core::SimConfig cfg;
      cfg.hw.cpus = 2;
      cfg.sched.ts_dynamics = dynamics;
      if (!dynamics)
        cfg.sched.ts_table = core::TsTable::flat(SimTime::millis(100));
      cfg.build_timeline = false;
      std::printf("E. pipeline on 2 CPUs, TS dynamics %s: speed-up %.2f\n",
                  dynamics ? "on (Solaris table)" : "off (flat)",
                  core::simulate(t, cfg).speedup);
    }
  }
  return 0;
}
