// Regenerates the paper's §4 intrusion measurements: the execution-time
// overhead of recording (paper: at most 2.6%, for Ocean), the log file
// size (largest 1.4 MB), and the event rate (max 653 events/s).
//
// Overhead is measured in REAL clock mode: each application runs once
// bare and once with the Recorder attached, on the one-LWP runtime,
// with actual computation burning wall time.  Virtual-mode recording is
// exactly zero-overhead by construction, so only real mode is
// interesting here.  Flags: --scale, --reps.
#include <algorithm>
#include <cstdio>

#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "trace/io.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "workloads/splash.hpp"

int main(int argc, char** argv) {
  using namespace vppb;

  Flags flags;
  flags.define_double("scale", 0.12, "problem scale for the real-time runs");
  flags.define_i64("reps", 5, "repetitions (the minimum is compared)");
  flags.define_i64("threads", 8, "worker threads");
  flags.parse(argc, argv);
  const double scale = flags.dbl("scale");
  const int reps = static_cast<int>(flags.i64("reps"));
  const int threads = static_cast<int>(flags.i64("threads"));

  std::printf("Recording intrusion (paper §4): overhead <= 2.6%%, largest "
              "log 1.4 MB, max 653 events/s\n\n");

  TextTable table;
  table.header({"Application", "bare", "recorded", "overhead",
                "log bytes", "records", "events/s"});

  double worst_overhead = 0.0;
  for (const auto& app : workloads::splash_suite()) {
    auto body = [&app, threads, scale]() {
      app.run(workloads::SplashParams{threads, scale});
    };
    sol::Program::Options real_opts;
    real_opts.clock_mode = ult::ClockMode::kReal;

    std::vector<double> bare_s, recorded_s;
    trace::Trace last_trace;
    for (int r = 0; r < reps; ++r) {
      sol::Program bare(real_opts);
      bare.run(body);
      bare_s.push_back(bare.last_duration().seconds_d());

      sol::Program recorded(real_opts);
      last_trace = rec::record_program(recorded, body);
      recorded_s.push_back(recorded.last_duration().seconds_d());
    }
    // Compare the minima: the minimum of repeated timings is the least
    // noise-contaminated estimator of the true cost.
    const double bare_mid = *std::min_element(bare_s.begin(), bare_s.end());
    const double rec_mid =
        *std::min_element(recorded_s.begin(), recorded_s.end());
    const double overhead = (rec_mid - bare_mid) / bare_mid;
    worst_overhead = std::max(worst_overhead, overhead);

    const std::string text = trace::to_text(last_trace);
    const trace::TraceStats stats = trace::compute_stats(last_trace);
    table.row({app.name, strprintf("%.3fs", bare_mid),
               strprintf("%.3fs", rec_mid), strprintf("%.2f%%", 100 * overhead),
               strprintf("%zu", text.size()), strprintf("%zu", stats.records),
               strprintf("%.0f", stats.events_per_second)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("max overhead: %.2f%% (paper: 2.6%%)\n", 100 * worst_overhead);
  std::printf("note: virtual-clock recording (used by the validation) is "
              "zero-overhead by construction;\nthis bench measures the "
              "real-clock mode, where probe work consumes wall time.\n");
  return 0;
}
