// Regenerates the paper's fig. 5: the parallelism graph and execution
// flow graph of a simulated execution, written as SVG (fig5.svg) and
// printed as ASCII.  Also demonstrates the popup/info of a selected
// event (the paper selects main's join with T4 — circled in fig. 5).
//
// Flags: --cpus, --out (SVG path), --threads.
#include <cstdio>
#include <fstream>

#include "core/engine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "util/flags.hpp"
#include "viz/visualizer.hpp"
#include "workloads/splash.hpp"

int main(int argc, char** argv) {
  using namespace vppb;

  Flags flags;
  flags.define_i64("cpus", 4, "simulated processors");
  flags.define_i64("threads", 4, "worker threads in the example program");
  flags.define_string("out", "fig5.svg", "SVG output path");
  flags.parse(argc, argv);
  const int cpus = static_cast<int>(flags.i64("cpus"));
  const int threads = static_cast<int>(flags.i64("threads"));

  // A small Ocean run gives the phase structure fig. 5 shows.
  sol::Program program;
  const trace::Trace t = rec::record_program(program, [threads]() {
    workloads::ocean(workloads::SplashParams{threads, 0.02});
  });

  core::SimConfig cfg;
  cfg.hw.cpus = cpus;
  const core::SimResult result = core::simulate(t, cfg);

  viz::Visualizer v(result, t);

  std::printf("Fig. 5 — simulated execution on %d CPUs "
              "(speed-up %.2f, %zu events)\n\n",
              cpus, result.speedup, result.events.size());
  std::printf("%s\n", viz::render_parallelism_ascii(v, 100, 8).c_str());
  std::printf("%s\n", viz::render_flow_ascii(v, 100).c_str());

  // Select "an interesting event": main's first join, like the paper.
  for (std::size_t i = 0; i < v.event_count(); ++i) {
    if (v.event(i).op == trace::Op::kThrJoin && v.event(i).tid == 1) {
      v.select_event(i);
      const viz::EventInfo info = v.event_info(i);
      std::printf("Selected event popup (paper §3.3):\n");
      std::printf("  thread: T%d (%s), start function '%s'\n", info.tid,
                  info.thread_name.c_str(), info.start_func.c_str());
      std::printf("  thread started %s, ended %s, working %s, total %s\n",
                  info.thread_started.to_string().c_str(),
                  info.thread_ended.to_string().c_str(),
                  info.thread_working.to_string().c_str(),
                  info.thread_total.to_string().c_str());
      std::printf("  event: %s %s on CPU %d\n", info.op.c_str(),
                  info.object.c_str(), info.cpu);
      std::printf("  started %s, ended %s, took %s\n",
                  info.started.to_string().c_str(),
                  info.ended.to_string().c_str(),
                  info.duration.to_string().c_str());
      std::printf("  source: %s\n\n",
                  info.source.empty() ? "(none)" : info.source.c_str());
      break;
    }
  }

  const std::string svg = viz::render_svg(v, viz::RenderOptions{});
  std::ofstream out(flags.str("out"));
  out << svg;
  std::printf("wrote %s (%zu bytes of SVG)\n", flags.str("out").c_str(),
              svg.size());
  return 0;
}
