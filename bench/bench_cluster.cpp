// Cluster scaling benchmark: multi-process flood through the routing
// tier, proving the proxy + N forked vppbd shards scale near-linearly
// 1 -> 2 -> 4 shards AND answer digest-identically to the offline CLI.
//
// Shard capacity is made deliberately scarce and uniform so the curve
// measures the routing tier and not this host's core count: every
// shard runs with a single pool worker (--jobs 2: one worker plus the
// caller) and a cooperative --delay-ms service-time injection
// (VPPB_FAULT=delay-ms) on every computed request.  One shard is
// therefore a fixed-rate server (~1000/delay_ms requests/sec); N
// healthy shards behind a working consistent-hash router approach N
// times that, even on a single-core host.
//
// Every response's digest is checked against the offline answer
// (server::handle_predict in-process) — throughput that returns wrong
// sweeps is not throughput.  Each flood client stamps its own
// client_id so the proxy's cross-tier single-flight cannot collapse
// distinct clients' requests and flatter the numbers.
//
//   build/bench/bench_cluster [--shards-list 1,2,4] [--clients 16]
//       [--traces 12] [--delay-ms 20] [--min-ms 1500] [--max-cpus 4]
//       [--out BENCH_cluster.json]
//
// The `bench`-labelled CTest target runs exactly this and
// tools/bench_gate enforces the scaling-efficiency floor
// (4-shard >= 3x single-shard) plus digest_ok.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cluster/launcher.hpp"
#include "cluster/proxy.hpp"
#include "cluster/ring.hpp"
#include "recorder/recorder.hpp"
#include "server/client.hpp"
#include "server/handlers.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "server/trace_cache.hpp"
#include "solaris/program.hpp"
#include "trace/binary.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"
#include "workloads/synthetic.hpp"

#ifndef VPPB_EXE
#error "bench_cluster requires the VPPB_EXE compile definition"
#endif

namespace {

using namespace vppb;
using Clock = std::chrono::steady_clock;

server::Request predict_request(const std::string& path, int max_cpus) {
  server::Request req;
  req.type = server::ReqType::kPredict;
  req.trace_path = path;
  req.max_cpus = max_cpus;
  return req;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_string("shards-list", "1,2,4", "shard counts to sweep");
  flags.define_i64("clients", 16, "concurrent flood clients");
  flags.define_i64("traces", 16, "distinct trace contents to spread");
  flags.define_i64("delay-ms", 20, "injected per-request service time");
  flags.define_i64("min-ms", 1500, "measurement window per shard count");
  flags.define_i64("max-cpus", 4, "sweep bound of each predict");
  flags.define_string("out", "BENCH_cluster.json", "JSON output file");
  flags.parse(argc, argv);

  const int nclients = static_cast<int>(flags.i64("clients"));
  const int ntraces = static_cast<int>(flags.i64("traces"));
  const int max_cpus = static_cast<int>(flags.i64("max-cpus"));
  const std::int64_t delay_ms = flags.i64("delay-ms");

  std::vector<int> shard_counts;
  for (const auto part : split(flags.str("shards-list"), ','))
    shard_counts.push_back(std::atoi(std::string(part).c_str()));

  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("vppb_bench_cluster_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(base);

  // Distinct trace contents, so consistent hashing has something to
  // spread, with the offline expected digest for each.
  //
  // The population is chosen *balanced* across every shard partition in
  // the sweep: with only a handful of discrete keys, raw hash variance
  // would let one shard own 5/12 of the traces and cap apparent 4-shard
  // scaling at 2.4x regardless of how well the routing tier works.  We
  // build the same Ring the proxy routes on (ids 1..N, default vnodes)
  // and keep generating candidate contents until each ring owns at most
  // ceil(traces/N) of them, so the floor measures the tier, not
  // small-sample luck.
  std::vector<std::string> trace_paths;
  std::vector<std::uint64_t> expected;
  {
    std::vector<std::pair<cluster::Ring, std::vector<int>>> rings;
    for (const int n : shard_counts) {
      if (n <= 1) continue;
      cluster::Ring ring(cluster::MembershipOptions().vnodes);
      for (int id = 1; id <= n; ++id)
        ring.add(static_cast<std::uint64_t>(id));
      rings.emplace_back(std::move(ring),
                         std::vector<int>(static_cast<std::size_t>(n) + 1, 0));
    }
    const int cap_per_shard_num = ntraces;  // cap = ceil(ntraces / n)
    server::TraceCache offline(static_cast<std::size_t>(ntraces) + 4,
                               512u << 20);
    for (int cand = 0; static_cast<int>(trace_paths.size()) < ntraces &&
                       cand < ntraces * 40;
         ++cand) {
      sol::Program program;
      const trace::Trace t = rec::record_program(program, [&]() {
        workloads::fork_join(2 + cand % 3, SimTime::micros(150 + 37 * cand));
      });
      const std::string path =
          base + "/t" + std::to_string(trace_paths.size()) + ".trace";
      trace::save_binary_file(t, path);
      const std::uint64_t key = server::content_key_of_file(path);
      bool fits = true;
      for (const auto& [ring, counts] : rings) {
        const int n = static_cast<int>(ring.shard_count());
        const int cap = (cap_per_shard_num + n - 1) / n;
        if (counts[static_cast<std::size_t>(ring.owner(key))] >= cap)
          fits = false;
      }
      if (!fits) {
        std::remove(path.c_str());
        continue;
      }
      for (auto& [ring, counts] : rings)
        ++counts[static_cast<std::size_t>(ring.owner(key))];
      trace_paths.push_back(path);
      const server::Response r =
          server::handle_predict(predict_request(path, max_cpus), offline);
      if (r.status != server::Status::kOk) {
        std::fprintf(stderr, "offline predict failed: %s\n", r.error.c_str());
        return 1;
      }
      expected.push_back(r.digest);
    }
    if (static_cast<int>(trace_paths.size()) < ntraces) {
      std::fprintf(stderr,
                   "bench_cluster: only %zu/%d balanced traces found; "
                   "proceeding with a smaller set\n",
                   trace_paths.size(), ntraces);
      if (trace_paths.empty()) return 1;
    }
  }
  const int live_traces = static_cast<int>(trace_paths.size());

  std::map<int, double> per_sec;
  std::map<int, std::uint64_t> totals;
  std::atomic<bool> digest_ok{true};

  for (const int nshards : shard_counts) {
    cluster::ClusterOptions copt;
    copt.exe = VPPB_EXE;
    copt.dir = base + "/c" + std::to_string(nshards);
    copt.shards = nshards;
    // One pool worker per shard (jobs counts the posting thread too):
    // compute serializes through it, making shard capacity uniform.
    copt.jobs = 2;
    copt.cache_entries = static_cast<std::size_t>(ntraces) + 4;
    copt.env.emplace_back("VPPB_FAULT",
                          "delay-ms:1:0:" + std::to_string(delay_ms));
    cluster::LocalCluster shards(copt);
    shards.start();

    cluster::ProxyOptions popt;
    popt.unix_path = copt.dir + "/proxy.sock";
    popt.shards = shards.shards();
    cluster::Proxy proxy(popt);
    proxy.start();

    // Warm-up: every trace parsed + compiled on its owning shard, and
    // a first digest check while we are at it.
    {
      server::Client warm = server::Client::connect_unix(popt.unix_path);
      for (int i = 0; i < live_traces; ++i) {
        const server::Response r =
            warm.call(predict_request(trace_paths[static_cast<std::size_t>(i)],
                                      max_cpus));
        if (r.status != server::Status::kOk) {
          std::fprintf(stderr, "warm-up via proxy failed: %s\n",
                       r.error.c_str());
          return 1;
        }
        if (r.digest != expected[static_cast<std::size_t>(i)])
          digest_ok.store(false);
      }
    }

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<bool> failed{false};
    std::vector<std::thread> clients;
    for (int c = 0; c < nclients; ++c) {
      clients.emplace_back([&, c]() {
        server::Client cli = server::Client::connect_unix(popt.unix_path);
        // Strided walk over the trace set — per-client odd strides keep
        // the closed-loop clients from convoying onto one shard in
        // lock-step; a per-client client_id keeps the proxy
        // single-flight from collapsing distinct clients' identical
        // requests into one forward.
        const int stride = (2 * c + 1) % live_traces == 0
                               ? 1
                               : (2 * c + 1) % live_traces;
        int i = c % live_traces;
        while (!stop.load(std::memory_order_relaxed)) {
          server::Request req = predict_request(
              trace_paths[static_cast<std::size_t>(i)], max_cpus);
          req.client_id = static_cast<std::uint64_t>(c + 1);
          const server::Response r = cli.call(req);
          if (r.status != server::Status::kOk) {
            std::fprintf(stderr, "flood request failed: %s\n",
                         r.error.c_str());
            failed.store(true);
            return;
          }
          if (r.digest != expected[static_cast<std::size_t>(i)])
            digest_ok.store(false);
          completed.fetch_add(1, std::memory_order_relaxed);
          i = (i + stride) % live_traces;
        }
      });
    }

    const Clock::time_point t0 = Clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(flags.i64("min-ms")));
    stop.store(true);
    for (auto& th : clients) th.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();
    proxy.stop();
    shards.stop();
    if (failed.load()) return 1;

    per_sec[nshards] = static_cast<double>(completed.load()) / elapsed;
    totals[nshards] = completed.load();
    std::printf("cluster: %d shard%s -> %.1f req/s (%llu in %.2f s)\n",
                nshards, nshards == 1 ? "" : "s", per_sec[nshards],
                static_cast<unsigned long long>(completed.load()), elapsed);
  }

  // Authenticated-TCP overhead: the protocol-v8 handshake costs one
  // HMAC exchange per *connection*; steady-state request throughput on
  // persistent loopback connections must stay within a few percent of
  // the unauthenticated path (bench_gate enforces >= 0.95x).  Health
  // requests keep the shard compute out of the measurement — this is a
  // wire-path benchmark, not an engine one.
  auto tcp_flood = [&](const std::string& key) -> double {
    server::ServerOptions so;
    so.tcp_port = 0;  // ephemeral loopback
    so.jobs = 2;
    so.auth_key = key;
    server::Server srv(so);
    srv.start();
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> completed{0};
    std::vector<std::thread> floods;
    for (int c = 0; c < 4; ++c) {
      floods.emplace_back([&]() {
        server::Client cli = server::Client::connect_tcp(
            "127.0.0.1", srv.tcp_port(), key, 2000);
        server::Request req;
        req.type = server::ReqType::kHealth;
        while (!stop.load(std::memory_order_relaxed)) {
          if (cli.call(req).status != server::Status::kOk) return;
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    const Clock::time_point t0 = Clock::now();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(flags.i64("min-ms")));
    stop.store(true);
    for (auto& th : floods) th.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();
    srv.stop();
    return static_cast<double>(completed.load()) / elapsed;
  };
  const double plain_tcp_per_sec = tcp_flood("");
  const double auth_tcp_per_sec = tcp_flood("bench-cluster-secret");
  std::printf("tcp: plain %.1f req/s, authenticated %.1f req/s (%.3fx)\n",
              plain_tcp_per_sec, auth_tcp_per_sec,
              plain_tcp_per_sec > 0 ? auth_tcp_per_sec / plain_tcp_per_sec
                                    : 0.0);

  std::ofstream out(flags.str("out"));
  out << "{\n"
      << "  \"clients\": " << nclients << ",\n"
      << "  \"traces\": " << live_traces << ",\n"
      << "  \"delay_ms\": " << delay_ms << ",\n"
      << "  \"max_cpus\": " << max_cpus << ",\n";
  for (const auto& [n, rate] : per_sec) {
    out << "  \"shards_" << n << "_per_sec\": " << rate << ",\n"
        << "  \"shards_" << n << "_requests\": " << totals[n] << ",\n";
  }
  if (per_sec.count(1) && per_sec.count(2) && per_sec[1] > 0)
    out << "  \"scaling_2x\": " << per_sec[2] / per_sec[1] << ",\n";
  if (per_sec.count(1) && per_sec.count(4) && per_sec[1] > 0)
    out << "  \"scaling_4x\": " << per_sec[4] / per_sec[1] << ",\n";
  out << "  \"plain_tcp_per_sec\": " << plain_tcp_per_sec << ",\n"
      << "  \"auth_tcp_per_sec\": " << auth_tcp_per_sec << ",\n";
  out << "  \"digest_ok\": " << (digest_ok.load() ? "true" : "false") << "\n"
      << "}\n";
  std::printf("wrote %s (digest_ok=%s)\n", flags.str("out").c_str(),
              digest_ok.load() ? "true" : "false");

  std::filesystem::remove_all(base);
  return digest_ok.load() ? 0 : 1;
}
