// Observability-overhead benchmark: what does the instrumentation cost
// when tracing is DISABLED (the default, and the case that must stay
// near-free), and what does it cost enabled?
//
// Measures engine steps/sec over the same scheduler-heavy FFT trace as
// bench_engine_steps, alternating tracer-off and tracer-on measurement
// blocks so drift (thermal, cache, scheduler) hits both sides equally.
// Writes BENCH_obs.json and exits non-zero when the disabled-tracing
// overhead exceeds --max-overhead-pct (default 3%), which is what makes
// `ctest -C bench -L bench` a regression gate for the obs layer.
//
//   build/bench/bench_obs [--threads 64] [--scale 0.2] [--cpus 8]
//       [--min-ms 300] [--blocks 4] [--max-overhead-pct 3]
//       [--out BENCH_obs.json]
//
// The uninstrumented engine no longer exists as a baseline, so the
// gate compares this build against itself: steps/sec with the tracer
// OFF vs. ON.  The disabled path runs a strict subset of the enabled
// path's work (the same sites, minus recording), so bounding the
// fully-enabled overhead below --max-overhead-pct bounds the
// disabled-path overhead too.  Noise discipline: the blocks are
// interleaved and the gate takes the LOWER of two overhead estimates —
// best-block-vs-best-block (preemption only ever subtracts throughput,
// so each mode's best block estimates the clean machine) and the
// median of adjacent-pair ratios (slow drift cancels within a pair).
// Shared-machine noise rarely skews both statistics the same way; a
// real regression (a span allocating or locking per step) moves both.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "core/engine.hpp"
#include "obs/span.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "util/flags.hpp"
#include "workloads/splash.hpp"

namespace {

using namespace vppb;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Repeats the simulation until `min_s` elapsed; returns steps/sec.
double measure(const core::CompiledTrace& compiled,
               const core::SimConfig& cfg, std::size_t steps_per_run,
               double min_s) {
  int runs = 0;
  const Clock::time_point t0 = Clock::now();
  double elapsed = 0.0;
  do {
    (void)core::simulate(compiled, cfg);
    ++runs;
    elapsed = seconds_since(t0);
  } while (elapsed < min_s);
  return static_cast<double>(steps_per_run) * runs / elapsed;
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_i64("threads", 64, "worker threads of the SPLASH-like trace");
  flags.define_double("scale", 0.2, "problem scale of the trace");
  flags.define_i64("cpus", 8, "simulated CPU count");
  flags.define_i64("min-ms", 150, "minimum wall time per measurement block");
  flags.define_i64("blocks", 9, "off/on measurement pairs (interleaved)");
  flags.define_double("max-overhead-pct", 3.0,
                      "gate: median tracing-enabled overhead (an upper "
                      "bound on the disabled path's cost)");
  flags.define_string("out", "BENCH_obs.json", "JSON output file");
  flags.parse(argc, argv);

  const int threads = static_cast<int>(flags.i64("threads"));
  const double scale = flags.dbl("scale");
  const double min_s = static_cast<double>(flags.i64("min-ms")) / 1e3;
  const int blocks = std::max(2, static_cast<int>(flags.i64("blocks")));
  const double max_overhead_pct = flags.dbl("max-overhead-pct");

  sol::Program program;
  const trace::Trace t = rec::record_program(program, [&]() {
    workloads::fft(workloads::SplashParams{threads, scale});
  });
  const core::CompiledTrace compiled = core::compile(t);
  std::size_t steps_per_run = 0;
  for (const auto& [tid, ct] : compiled.threads)
    steps_per_run += ct.steps.size();

  core::SimConfig cfg;
  cfg.hw.cpus = static_cast<int>(flags.i64("cpus"));
  cfg.build_timeline = false;

  obs::Tracer& tracer = obs::Tracer::global();
  std::vector<double> off_sps, on_sps, ctx_sps;
  // Warm-up block (discarded): fills the allocator and code caches.
  tracer.disable();
  (void)measure(compiled, cfg, steps_per_run, min_s / 2);
  for (int b = 0; b < blocks; ++b) {
    tracer.disable();
    off_sps.push_back(measure(compiled, cfg, steps_per_run, min_s));
    tracer.clear();  // bounded rings, but keep the export path honest
    tracer.enable();
    on_sps.push_back(measure(compiled, cfg, steps_per_run, min_s));
    // Third leg: the distributed-tracing configuration a traced
    // cluster request runs under — tracer enabled AND a thread-local
    // TraceContext installed, so every recorded span pays the extra
    // context load + id store.  This is the propagation cost the v7
    // always-on default must keep under the same budget.
    tracer.clear();
    {
      obs::TraceContext ctx(0x60d60d);
      ctx_sps.push_back(measure(compiled, cfg, steps_per_run, min_s));
    }
  }
  tracer.disable();
  tracer.clear();

  const double off_med = median(off_sps);
  const double on_med = median(on_sps);
  const double ctx_med = median(ctx_sps);
  // The gate: full tracing must cost less than the budget, which
  // bounds the disabled path (a strict subset of the enabled work).
  // Two overhead estimates, lower wins (see the file comment).
  const double off_best = *std::max_element(off_sps.begin(), off_sps.end());
  const double on_best = *std::max_element(on_sps.begin(), on_sps.end());
  const double ctx_best = *std::max_element(ctx_sps.begin(), ctx_sps.end());
  const auto overhead_vs_off = [&](const std::vector<double>& mode_sps,
                                   double mode_best) {
    const double best_pct = 100.0 * (off_best / mode_best - 1.0);
    std::vector<double> pair_ratios;
    for (int b = 0; b < blocks; ++b)
      pair_ratios.push_back(off_sps[static_cast<std::size_t>(b)] /
                            mode_sps[static_cast<std::size_t>(b)]);
    const double paired_pct = 100.0 * (median(pair_ratios) - 1.0);
    return std::min(best_pct, paired_pct);
  };
  const double enabled_overhead_pct = overhead_vs_off(on_sps, on_best);
  const double propagation_overhead_pct = overhead_vs_off(ctx_sps, ctx_best);

  std::ofstream out(flags.str("out"));
  out << "{\n"
      << "  \"trace\": \"fft\",\n"
      << "  \"trace_threads\": " << threads << ",\n"
      << "  \"trace_scale\": " << scale << ",\n"
      << "  \"steps_per_run\": " << steps_per_run << ",\n"
      << "  \"sim_cpus\": " << cfg.hw.cpus << ",\n"
      << "  \"blocks\": " << blocks << ",\n"
      << "  \"steps_per_sec_tracing_off_best\": "
      << static_cast<std::int64_t>(off_best) << ",\n"
      << "  \"steps_per_sec_tracing_on_best\": "
      << static_cast<std::int64_t>(on_best) << ",\n"
      << "  \"steps_per_sec_tracing_off_median\": "
      << static_cast<std::int64_t>(off_med) << ",\n"
      << "  \"steps_per_sec_tracing_on_median\": "
      << static_cast<std::int64_t>(on_med) << ",\n"
      << "  \"steps_per_sec_traced_ctx_best\": "
      << static_cast<std::int64_t>(ctx_best) << ",\n"
      << "  \"steps_per_sec_traced_ctx_median\": "
      << static_cast<std::int64_t>(ctx_med) << ",\n"
      << "  \"enabled_overhead_pct\": " << enabled_overhead_pct << ",\n"
      << "  \"propagation_overhead_pct\": " << propagation_overhead_pct
      << ",\n"
      << "  \"max_overhead_pct\": " << max_overhead_pct << "\n"
      << "}\n";
  std::printf(
      "obs: tracing off %.0f steps/sec, on %.0f, traced-ctx %.0f "
      "(best of %d blocks)\n"
      "     enabled overhead %.2f%%, propagation %.2f%% (gate %.1f%%; "
      "disabled is a strict subset)\n"
      "wrote %s\n",
      off_best, on_best, ctx_best, blocks, enabled_overhead_pct,
      propagation_overhead_pct, max_overhead_pct, flags.str("out").c_str());

  if (enabled_overhead_pct > max_overhead_pct) {
    std::fprintf(stderr,
                 "bench_obs: FAIL: tracing overhead %.2f%% exceeds %.1f%%\n",
                 enabled_overhead_pct, max_overhead_pct);
    return 1;
  }
  if (propagation_overhead_pct > max_overhead_pct) {
    std::fprintf(stderr,
                 "bench_obs: FAIL: trace-context propagation overhead "
                 "%.2f%% exceeds %.1f%%\n",
                 propagation_overhead_pct, max_overhead_pct);
    return 1;
  }
  return 0;
}
