// Regenerates the paper's §5 case study (figures 6 and 7):
//
//  1. the naive producer-consumer program runs only ~2.2% faster on a
//     simulated 8-CPU machine;
//  2. the Visualizer pinpoints one mutex blocking every thread;
//  3. the tuned program (100 buffers, separate insert/fetch locks)
//     reaches ~7.75x predicted, ~7.90x "real" (1.9% error in the paper).
//
// Emits fig6.svg / fig7.svg.  Flags: --producers, --consumers, --items,
// --buffers, --cpus, --svg.
#include <cstdio>
#include <fstream>

#include "core/engine.hpp"
#include "machine/machine.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "viz/analysis.hpp"
#include "viz/visualizer.hpp"
#include "workloads/prodcons.hpp"

namespace {

using namespace vppb;

/// The §5 diagnosis, programmatically: the contention report names the
/// object with the most blocked time ("we reach the conclusion that it
/// is the same mutex causing the blocking for all threads").
void diagnose(const core::SimResult& result, const trace::Trace& t) {
  const viz::AnalysisReport report = viz::analyze(result, t);
  std::printf("%s", report.to_string().c_str());
}

void emit_svg(const core::SimResult& result, const trace::Trace& t,
              const std::string& path) {
  viz::Visualizer v(result, t);
  // Show a slice of the middle of the run, like the paper's figures,
  // and compress away inactive threads.
  v.select_interval(result.total.scaled(0.45), result.total.scaled(0.55));
  v.compress_threads();
  std::ofstream(path) << viz::render_svg(v, viz::RenderOptions{});
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_i64("producers", 150, "producer threads (paper: 150)");
  flags.define_i64("consumers", 75, "consumer threads (paper: 75)");
  flags.define_i64("items", 10, "items per producer (paper: 10)");
  flags.define_i64("buffers", 100, "buffers in the tuned version");
  flags.define_i64("cpus", 8, "simulated processors");
  flags.define_bool("svg", true, "write fig6.svg / fig7.svg");
  flags.parse(argc, argv);

  workloads::ProdConsParams params;
  params.producers = static_cast<int>(flags.i64("producers"));
  params.consumers = static_cast<int>(flags.i64("consumers"));
  params.items_per_producer = static_cast<int>(flags.i64("items"));
  params.buffers = static_cast<int>(flags.i64("buffers"));
  const int cpus = static_cast<int>(flags.i64("cpus"));

  std::printf("Producer-consumer case study (paper §5): %d producers x %d "
              "items, %d consumers, %d CPUs\n\n",
              params.producers, params.items_per_producer, params.consumers,
              cpus);

  core::SimConfig cfg;
  cfg.hw.cpus = cpus;

  // --- Naive version (fig. 6) ---
  sol::Program p1;
  const trace::Trace naive = rec::record_program(
      p1, [&params]() { workloads::prodcons_naive(params); });
  const core::SimResult naive_sim = core::simulate(naive, cfg);
  std::printf("naive: predicted speed-up %.3f on %d CPUs (%.1f%% faster; "
              "paper: 2.2%%)\n",
              naive_sim.speedup, cpus, 100.0 * (naive_sim.speedup - 1.0));
  diagnose(naive_sim, naive);

  // --- Tuned version (fig. 7) ---
  sol::Program p2;
  const trace::Trace tuned = rec::record_program(
      p2, [&params]() { workloads::prodcons_tuned(params); });
  const core::SimResult tuned_sim = core::simulate(tuned, cfg);
  machine::MachineConfig mc;
  mc.cpus = cpus;
  const machine::MachineResult real = machine::execute(tuned, mc);
  const double err = prediction_error(real.speedup_mid, tuned_sim.speedup);
  std::printf("\ntuned: predicted speed-up %.2f (paper: 7.75), \"real\" %.2f "
              "(paper: 7.90), error %.1f%% (paper: 1.9%%)\n",
              tuned_sim.speedup, real.speedup_mid, 100.0 * err);

  if (flags.boolean("svg")) {
    emit_svg(naive_sim, naive, "fig6.svg");
    emit_svg(tuned_sim, tuned, "fig7.svg");
    std::printf("\nwrote fig6.svg (naive) and fig7.svg (tuned)\n");
  }
  return 0;
}
