// Engine-throughput benchmark: how many replayed trace steps per second
// does the engine sustain, and how long does a processor sweep take
// serially vs. on the util::ThreadPool?
//
// Two throughput numbers are reported:
//
//  * steps_per_sec — the headline: repeated runs on one reused
//    core::SimEngine, i.e. the batched-driver path every sweep point
//    and every vppbd request takes.  Allocation-free in steady state.
//  * steps_per_sec_oneshot — repeated core::simulate() calls, paying
//    the full engine construction per run (the cold-start path).
//
// The sweep is timed twice: serially (jobs=1) and with a thread pool
// sized to the hardware (at least 2 workers, so the pool path is
// exercised even on a single-core host, where jobs=1 vs jobs=1 would
// compare nothing).  Both job counts are emitted.
//
// Results go to a JSON file (BENCH_engine.json by default) so the perf
// trajectory of the scheduler is comparable across PRs:
//
//   build/bench/bench_engine_steps [--threads 64] [--scale 0.2]
//       [--cpus 8] [--min-ms 500] [--jobs 0] [--out BENCH_engine.json]
//       [--min-steps-per-sec N]
//
// --min-steps-per-sec turns the benchmark into a regression assertion:
// a headline below the floor exits non-zero (tools/bench_gate compares
// against the checked-in baseline instead, with a relative margin).
//
// The `bench`-labelled CTest target runs exactly this (see
// bench/CMakeLists.txt); it is excluded from the default `ctest` run.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/sweep.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"
#include "workloads/splash.hpp"

namespace {

using namespace vppb;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  // 64 trace threads on 8 simulated CPUs keeps long run queues live, so
  // the benchmark exercises the scheduler, not just the replay machinery
  // (with threads == cpus the ready list never grows and any scheduler
  // looks fast).
  flags.define_i64("threads", 64, "worker threads of the SPLASH-like trace");
  flags.define_double("scale", 0.2, "problem scale of the trace");
  flags.define_i64("cpus", 8, "simulated CPU count for the steps/sec run");
  flags.define_i64("min-ms", 500, "minimum wall time per measurement");
  flags.define_i64("jobs", 0,
                   "parallel-sweep workers (0 = hardware threads, min 2)");
  flags.define_i64("min-steps-per-sec", 0,
                   "fail (exit 1) if the headline falls below this floor");
  flags.define_string("out", "BENCH_engine.json", "JSON output file");
  flags.parse(argc, argv);

  const int threads = static_cast<int>(flags.i64("threads"));
  const double scale = flags.dbl("scale");
  const int cpus = static_cast<int>(flags.i64("cpus"));
  const double min_s = static_cast<double>(flags.i64("min-ms")) / 1e3;
  const int jobs_flag = static_cast<int>(flags.i64("jobs"));
  const int jobs =
      jobs_flag > 0
          ? jobs_flag
          : std::max(2, static_cast<int>(std::thread::hardware_concurrency()));

  // The paper's clearly-sublinear SPLASH kernel: serial transpose phases
  // between parallel row FFTs, i.e. plenty of scheduler traffic.
  sol::Program program;
  const trace::Trace t = rec::record_program(program, [&]() {
    workloads::fft(workloads::SplashParams{threads, scale});
  });
  const core::CompiledTrace compiled = core::compile(t);
  std::size_t steps_per_run = 0;
  for (const auto& [tid, ct] : compiled.threads) steps_per_run += ct.steps.size();

  core::SimConfig cfg;
  cfg.hw.cpus = cpus;
  cfg.build_timeline = false;

  // Headline: steps/sec on one reused engine, repeated until min-ms.
  int runs = 0;
  double speedup = 0.0;
  double elapsed = 0.0;
  {
    core::SimEngine engine;
    const Clock::time_point t0 = Clock::now();
    do {
      speedup = engine.run(compiled, cfg).speedup;
      ++runs;
      elapsed = seconds_since(t0);
    } while (elapsed < min_s);
  }
  const double steps_per_sec =
      static_cast<double>(steps_per_run) * runs / elapsed;

  // Cold-start reference: a fresh engine per run via simulate().
  int runs_oneshot = 0;
  double elapsed_oneshot = 0.0;
  {
    const Clock::time_point t0 = Clock::now();
    do {
      (void)core::simulate(compiled, cfg);
      ++runs_oneshot;
      elapsed_oneshot = seconds_since(t0);
    } while (elapsed_oneshot < min_s);
  }
  const double steps_per_sec_oneshot =
      static_cast<double>(steps_per_run) * runs_oneshot / elapsed_oneshot;

  // 8-point sweep: serial wall time vs. thread-pool wall time.  Both go
  // through the batched SweepRunner; the serial leg shows the per-point
  // cost, the parallel leg what the pool adds or recovers on this host.
  std::vector<int> counts(8);
  std::iota(counts.begin(), counts.end(), 1);
  double serial_s = 0.0, parallel_s = 0.0;
  {
    int reps = 0;
    const Clock::time_point s0 = Clock::now();
    do {
      core::sweep_cpus(compiled, counts, cfg);
      ++reps;
      serial_s = seconds_since(s0);
    } while (serial_s < min_s);
    serial_s /= reps;
  }
  {
    core::SweepOptions opt;
    opt.jobs = jobs;
    int reps = 0;
    const Clock::time_point p0 = Clock::now();
    do {
      core::sweep_cpus(compiled, counts, cfg, opt);
      ++reps;
      parallel_s = seconds_since(p0);
    } while (parallel_s < min_s);
    parallel_s /= reps;
  }

  std::ofstream out(flags.str("out"));
  out << "{\n"
      << "  \"trace\": \"fft\",\n"
      << "  \"trace_threads\": " << threads << ",\n"
      << "  \"trace_scale\": " << scale << ",\n"
      << "  \"steps_per_run\": " << steps_per_run << ",\n"
      << "  \"sim_cpus\": " << cpus << ",\n"
      << "  \"runs\": " << runs << ",\n"
      << "  \"runs_oneshot\": " << runs_oneshot << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"steps_per_sec\": " << static_cast<std::int64_t>(steps_per_sec)
      << ",\n"
      << "  \"steps_per_sec_oneshot\": "
      << static_cast<std::int64_t>(steps_per_sec_oneshot) << ",\n"
      << "  \"sweep_points\": " << counts.size() << ",\n"
      << "  \"sweep_serial_ms\": " << serial_s * 1e3 << ",\n"
      << "  \"sweep_serial_jobs\": 1,\n"
      << "  \"sweep_parallel_ms\": " << parallel_s * 1e3 << ",\n"
      << "  \"sweep_jobs\": " << jobs << "\n"
      << "}\n";
  std::printf(
      "engine: %zu steps/run, %d runs, %.0f steps/sec batched, "
      "%.0f steps/sec one-shot (cpus=%d)\n"
      "sweep:  %zu points, serial %.1f ms, parallel %.1f ms (jobs=%d)\n"
      "wrote %s\n",
      steps_per_run, runs, steps_per_sec, steps_per_sec_oneshot, cpus,
      counts.size(), serial_s * 1e3, parallel_s * 1e3, jobs,
      flags.str("out").c_str());

  const double floor = static_cast<double>(flags.i64("min-steps-per-sec"));
  if (floor > 0.0 && steps_per_sec < floor) {
    std::fprintf(stderr,
                 "FAIL: steps_per_sec %.0f below required floor %.0f\n",
                 steps_per_sec, floor);
    return 1;
  }
  return 0;
}
