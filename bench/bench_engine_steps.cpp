// Engine-throughput benchmark: how many replayed trace steps per second
// does core::simulate sustain, and how long does a processor sweep take
// serially vs. on the util::ThreadPool?
//
// Results go to a JSON file (BENCH_engine.json by default) so the perf
// trajectory of the scheduler is comparable across PRs:
//
//   build/bench/bench_engine_steps [--threads 64] [--scale 0.2]
//       [--cpus 8] [--min-ms 500] [--jobs 0] [--out BENCH_engine.json]
//
// The `bench`-labelled CTest target runs exactly this (see
// bench/CMakeLists.txt); it is excluded from the default `ctest` run.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <vector>

#include "core/engine.hpp"
#include "core/sweep.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "util/flags.hpp"
#include "util/thread_pool.hpp"
#include "workloads/splash.hpp"

namespace {

using namespace vppb;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  // 64 trace threads on 8 simulated CPUs keeps long run queues live, so
  // the benchmark exercises the scheduler, not just the replay machinery
  // (with threads == cpus the ready list never grows and any scheduler
  // looks fast).
  flags.define_i64("threads", 64, "worker threads of the SPLASH-like trace");
  flags.define_double("scale", 0.2, "problem scale of the trace");
  flags.define_i64("cpus", 8, "simulated CPU count for the steps/sec run");
  flags.define_i64("min-ms", 500, "minimum wall time per measurement");
  flags.define_i64("jobs", 0, "sweep workers (0 = all hardware threads)");
  flags.define_string("out", "BENCH_engine.json", "JSON output file");
  flags.parse(argc, argv);

  const int threads = static_cast<int>(flags.i64("threads"));
  const double scale = flags.dbl("scale");
  const int cpus = static_cast<int>(flags.i64("cpus"));
  const double min_s = static_cast<double>(flags.i64("min-ms")) / 1e3;
  const int jobs = util::ThreadPool::resolve_jobs(
      static_cast<int>(flags.i64("jobs")));

  // The paper's clearly-sublinear SPLASH kernel: serial transpose phases
  // between parallel row FFTs, i.e. plenty of scheduler traffic.
  sol::Program program;
  const trace::Trace t = rec::record_program(program, [&]() {
    workloads::fft(workloads::SplashParams{threads, scale});
  });
  const core::CompiledTrace compiled = core::compile(t);
  std::size_t steps_per_run = 0;
  for (const auto& [tid, ct] : compiled.threads) steps_per_run += ct.steps.size();

  core::SimConfig cfg;
  cfg.hw.cpus = cpus;
  cfg.build_timeline = false;

  // Steps/sec of a single simulation, repeated until min-ms elapsed.
  int runs = 0;
  double speedup = 0.0;
  const Clock::time_point t0 = Clock::now();
  double elapsed = 0.0;
  do {
    speedup = core::simulate(compiled, cfg).speedup;
    ++runs;
    elapsed = seconds_since(t0);
  } while (elapsed < min_s);
  const double steps_per_sec =
      static_cast<double>(steps_per_run) * runs / elapsed;

  // 8-point sweep: serial wall time vs. thread-pool wall time.
  std::vector<int> counts(8);
  std::iota(counts.begin(), counts.end(), 1);
  double serial_s = 0.0, parallel_s = 0.0;
  int sweep_runs = 0;
  {
    const Clock::time_point s0 = Clock::now();
    do {
      core::sweep_cpus(compiled, counts, cfg);
      ++sweep_runs;
      serial_s = seconds_since(s0);
    } while (serial_s < min_s);
    serial_s /= sweep_runs;
  }
  {
    core::SweepOptions opt;
    opt.jobs = jobs;
    int reps = 0;
    const Clock::time_point p0 = Clock::now();
    do {
      core::sweep_cpus(compiled, counts, cfg, opt);
      ++reps;
      parallel_s = seconds_since(p0);
    } while (parallel_s < min_s);
    parallel_s /= reps;
  }

  std::ofstream out(flags.str("out"));
  out << "{\n"
      << "  \"trace\": \"fft\",\n"
      << "  \"trace_threads\": " << threads << ",\n"
      << "  \"trace_scale\": " << scale << ",\n"
      << "  \"steps_per_run\": " << steps_per_run << ",\n"
      << "  \"sim_cpus\": " << cpus << ",\n"
      << "  \"runs\": " << runs << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"steps_per_sec\": " << static_cast<std::int64_t>(steps_per_sec)
      << ",\n"
      << "  \"sweep_points\": " << counts.size() << ",\n"
      << "  \"sweep_serial_ms\": " << serial_s * 1e3 << ",\n"
      << "  \"sweep_parallel_ms\": " << parallel_s * 1e3 << ",\n"
      << "  \"sweep_jobs\": " << jobs << "\n"
      << "}\n";
  std::printf(
      "engine: %zu steps/run, %d runs, %.0f steps/sec (cpus=%d)\n"
      "sweep:  %zu points, serial %.1f ms, parallel %.1f ms (jobs=%d)\n"
      "wrote %s\n",
      steps_per_run, runs, steps_per_sec, cpus, counts.size(), serial_s * 1e3,
      parallel_s * 1e3, jobs, flags.str("out").c_str());
  return 0;
}
