// Regenerates the paper's fig. 2 (the example program and the Recorder's
// output) and fig. 4 (the Simulator's per-thread sorting of that log).
//
// The program is fig. 2's: main creates thr_a and thr_b (both running
// `thread`), joins them in order, and exits.  We print the recorded
// event list in the paper's format, then the per-thread lists.
#include <cstdio>

#include "core/compiler.hpp"
#include "recorder/recorder.hpp"
#include "solaris/program.hpp"
#include "solaris/solaris.hpp"
#include "trace/trace.hpp"
#include "util/strings.hpp"

namespace {

using namespace vppb;

void* thread_fn(void*) {
  sol::compute(SimTime::micros(400));  // work();
  return nullptr;
}

void fig2_main() {
  sol::thread_t thr_a = 0, thr_b = 0;
  sol::thr_create(nullptr, 0, thread_fn, nullptr, 0, &thr_a);
  sol::thr_create(nullptr, 0, thread_fn, nullptr, 0, &thr_b);
  sol::thr_join(thr_a, nullptr, nullptr);
  sol::thr_join(thr_b, nullptr, nullptr);
}

std::string describe(const trace::Trace& t, const trace::Record& r) {
  (void)t;  // kept in the signature for symmetry with richer renderers
  std::string out = strprintf("%6.2f  T%d  %s%s", r.at.seconds_d() * 1000.0,
                              r.tid, r.phase == trace::Phase::kReturn ? "ok " : "",
                              std::string(trace::op_name(r.op)).c_str());
  if (r.obj.kind == trace::ObjKind::kThread && r.obj.id != 0)
    out += strprintf(" T%u", r.obj.id);
  if (r.op == trace::Op::kThrCreate && r.phase == trace::Phase::kReturn)
    out += strprintf(" -> T%lld", static_cast<long long>(r.arg));
  return out;
}

}  // namespace

int main() {
  sol::register_start_routine(thread_fn, "thread");
  sol::Program program;
  const trace::Trace t = rec::record_program(program, fig2_main);

  std::printf("Fig. 2 — the Recorder's output (times in ms):\n");
  std::printf("  (thread ids as in the paper: main = 1, thr_a = 4, thr_b = 5)\n\n");
  for (const auto& r : t.records) std::printf("  %s\n", describe(t, r).c_str());

  std::printf("\nFig. 4 — the Simulator's per-thread event lists:\n");
  for (const auto& [tid, list] : trace::split_by_thread(t)) {
    const trace::ThreadMeta* meta = t.find_thread(tid);
    std::printf("\n  T%d (%s) event list:\n", tid,
                meta != nullptr ? t.strings.get(meta->name).c_str() : "?");
    for (const auto& r : list) std::printf("    %s\n", describe(t, r).c_str());
  }

  const core::CompiledTrace c = core::compile(t);
  std::printf("\nCompiled demand per thread:\n");
  for (const auto& [tid, ct] : c.threads) {
    std::printf("  T%d (%s): %zu steps, %s CPU\n", tid, ct.name.c_str(),
                ct.steps.size(), ct.total_cpu.to_string().c_str());
  }
  std::printf("\nRecorded uni-processor duration: %s\n",
              t.duration().to_string().c_str());
  return 0;
}
