// Prediction-service benchmark: sustained cached-trace predictions per
// second through the full stack — client framing, socket, admission,
// pool dispatch, sweep, response framing — plus the client-observed
// latency distribution.  After the first request the trace is hot in
// the content-addressed cache, so this measures the interactive what-if
// loop the daemon exists for, not parse/compile throughput.
//
//   build/bench/bench_server [--threads 16] [--scale 0.1] [--max-cpus 8]
//       [--clients 4] [--jobs 0] [--min-ms 1000] [--out BENCH_server.json]
//
// The `bench`-labelled CTest target runs exactly this (see
// bench/CMakeLists.txt); it is excluded from the default `ctest` run.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "recorder/recorder.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "solaris/program.hpp"
#include "trace/binary.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "workloads/splash.hpp"

namespace {

using namespace vppb;
using Clock = std::chrono::steady_clock;

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_i64("threads", 16, "worker threads of the benchmarked trace");
  flags.define_double("scale", 0.1, "problem scale of the trace");
  flags.define_i64("max-cpus", 8, "sweep bound of each predict request");
  flags.define_i64("clients", 4, "concurrent client connections");
  flags.define_i64("jobs", 0, "server pool workers (0 = hardware threads)");
  flags.define_i64("min-ms", 1000, "minimum wall time of the measurement");
  flags.define_string("out", "BENCH_server.json", "JSON output file");
  flags.parse(argc, argv);

  const int threads = static_cast<int>(flags.i64("threads"));
  const double scale = flags.dbl("scale");
  const int max_cpus = static_cast<int>(flags.i64("max-cpus"));
  const int nclients = static_cast<int>(flags.i64("clients"));
  const double min_s = static_cast<double>(flags.i64("min-ms")) / 1e3;

  // Same trace family as the engine benchmark, smaller scale: each
  // predict is a multi-point sweep, so requests stay in the hundreds of
  // microseconds and the framing/dispatch overhead is visible.
  sol::Program program;
  const trace::Trace t = rec::record_program(program, [&]() {
    workloads::fft(workloads::SplashParams{threads, scale});
  });
  const std::string trace_path =
      (std::filesystem::temp_directory_path() /
       ("vppb_bench_server_" + std::to_string(::getpid()) + ".trace"))
          .string();
  trace::save_binary_file(t, trace_path);
  const std::string sock_path = trace_path + ".sock";

  server::ServerOptions so;
  so.unix_path = sock_path;
  so.jobs = static_cast<int>(flags.i64("jobs"));
  so.admission_limit = nclients * 2;
  server::Server server(so);
  server.start();

  server::Request req;
  req.type = server::ReqType::kPredict;
  req.trace_path = trace_path;
  req.max_cpus = max_cpus;

  // Warm-up: the one request that parses and compiles.
  {
    server::Client warm = server::Client::connect_unix(sock_path);
    const server::Response r = warm.call(req);
    if (r.status != server::Status::kOk) {
      std::fprintf(stderr, "warm-up predict failed: %s\n", r.error.c_str());
      return 1;
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};
  std::mutex lat_mu;
  std::vector<double> latencies_us;
  std::vector<std::thread> clients;
  for (int i = 0; i < nclients; ++i) {
    clients.emplace_back([&]() {
      server::Client c = server::Client::connect_unix(sock_path);
      std::vector<double> local;
      while (!stop.load(std::memory_order_relaxed)) {
        const Clock::time_point r0 = Clock::now();
        const server::Response r = c.call(req);
        if (r.status != server::Status::kOk) std::abort();
        local.push_back(std::chrono::duration<double, std::micro>(
                            Clock::now() - r0)
                            .count());
        completed.fetch_add(1, std::memory_order_relaxed);
      }
      std::lock_guard<std::mutex> lock(lat_mu);
      latencies_us.insert(latencies_us.end(), local.begin(), local.end());
    });
  }

  const Clock::time_point t0 = Clock::now();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(flags.i64("min-ms")));
  stop.store(true);
  for (auto& th : clients) th.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  server.stop();

  const double per_sec = static_cast<double>(completed.load()) / elapsed;
  const double p50 = percentile(latencies_us, 50);
  const double p90 = percentile(latencies_us, 90);
  const double p99 = percentile(latencies_us, 99);

  std::ofstream out(flags.str("out"));
  out << "{\n"
      << "  \"trace\": \"fft\",\n"
      << "  \"trace_threads\": " << threads << ",\n"
      << "  \"trace_scale\": " << scale << ",\n"
      << "  \"max_cpus\": " << max_cpus << ",\n"
      << "  \"clients\": " << nclients << ",\n"
      << "  \"elapsed_s\": " << elapsed << ",\n"
      << "  \"predictions\": " << completed.load() << ",\n"
      << "  \"predictions_per_sec\": " << per_sec << ",\n"
      << "  \"latency_p50_us\": " << p50 << ",\n"
      << "  \"latency_p90_us\": " << p90 << ",\n"
      << "  \"latency_p99_us\": " << p99 << "\n"
      << "}\n";
  std::printf(
      "server: %llu cached predictions in %.2f s over %d clients "
      "(%.0f/sec)\nlatency: p50 %.0f us, p90 %.0f us, p99 %.0f us\n"
      "wrote %s\n",
      static_cast<unsigned long long>(completed.load()), elapsed, nclients,
      per_sec, p50, p90, p99, flags.str("out").c_str());

  std::remove(trace_path.c_str());
  return min_s > elapsed + 1 ? 1 : 0;  // sanity: the sleep really ran
}
