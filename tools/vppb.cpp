// vppb — the command-line front-end tying the whole tool together.
//
//   vppb gen <workload>      record a built-in workload to a trace file
//   vppb info <trace>        log statistics (threads, events, duration)
//   vppb check <trace>       semantic lint (unmatched unlocks, bad joins)
//   vppb predict <trace>     speed-up sweep across processor counts
//   vppb simulate <trace>    full simulation: timeline, stats, SVG/ASCII
//   vppb analyze <trace>     contention report (the §5 diagnosis)
//   vppb validate <workload> Table-1-style row: real vs predicted
//   vppb convert <in> <out>  text <-> binary trace conversion
//   vppb serve               run the resident prediction daemon (vppbd)
//   vppb proxy               consistent-hash routing tier over N shards
//   vppb cluster             fork N shards + proxy in one command
//   vppb request <type> ...  query a running daemon (or proxy)
//
// Trace files are sniffed: both the text and the binary format load.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <thread>
#include <unistd.h>
#include <unordered_map>

#include "cluster/launcher.hpp"
#include "cluster/membership.hpp"
#include "cluster/proxy.hpp"
#include "core/engine.hpp"
#include "core/sweep.hpp"
#include "machine/validate.hpp"
#include "obs/log.hpp"
#include "obs/span.hpp"
#include "recorder/recorder.hpp"
#include "server/auth.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "server/stats_text.hpp"
#include "server/trace_cache.hpp"
#include "solaris/program.hpp"
#include "trace/binary.hpp"
#include "trace/io.hpp"
#include "trace/lint.hpp"
#include "util/atomic_file.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/flags.hpp"
#include "util/netem.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "util/table.hpp"
#include "viz/analysis.hpp"
#include "viz/visualizer.hpp"
#include "workloads/prodcons.hpp"
#include "workloads/splash.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace vppb;

int usage() {
  std::fprintf(
      stderr,
      "usage: vppb <command> [args]\n"
      "  gen <workload> [--threads N] [--scale S] [--out F] [--binary]\n"
      "      [--crash-safe] [--chunk-records N]\n"
      "      workloads: ocean water fft radix lu prodcons-naive\n"
      "                 prodcons-tuned forkjoin pipeline\n"
      "      --crash-safe streams a chunked log to <out> as the workload\n"
      "      runs; a crash mid-run leaves every sealed chunk recoverable\n"
      "  info <trace>\n"
      "  check <trace>        semantic lint; exit 0 clean, 3 warnings,\n"
      "        4 errors (unlock-without-lock, bad joins, negative\n"
      "        semaphore counts, non-monotonic timestamps, ...)\n"
      "  predict <trace> [--max-cpus N] [--lwps N] [--comm-delay-us D]\n"
      "          [--jobs N]   (0 = all hardware threads)\n"
      "  simulate <trace> [--cpus N] [--lwps N] [--svg F] [--columns N]\n"
      "  analyze <trace> [--cpus N]\n"
      "  predict/simulate/analyze accept run budgets (--max-steps N,\n"
      "  --max-sim-ms N, --max-result-mb N, --max-wall-ms N; 0 = off);\n"
      "  a tripped budget exits 5 with the budget named\n"
      "  validate <workload> [--cpus-list 2,4,8] [--scale S] [--reps N]\n"
      "  convert <in> <out>   (binary iff <out> ends in .bin)\n"
      "  serve [--socket PATH | --port N] [--jobs N] [--admission N]\n"
      "        [--cache-entries N] [--cache-mb N] [--per-client N]\n"
      "        [--shard-id N]   (identity reported in health/stats)\n"
      "        budgets as above, plus the watchdog/quarantine knobs:\n"
      "        [--watchdog-ms N] [--escalate-ms N] [--poison-strikes N]\n"
      "        [--quarantine-ms N]\n"
      "  proxy --shards EP[,EP...] [--socket PATH | --port N]\n"
      "        [--hedge-ms N] [--vnodes N] [--forward-timeout-ms N]\n"
      "        [--quota-rps R] [--quota-burst B] [--replicas N]\n"
      "        [--brownout-live-pct P] [--brownout-inflight N]\n"
      "        [--stale-ms N]\n"
      "        consistent-hash routing tier; each EP is a unix socket\n"
      "        path or a loopback port; exit 1 on bad config\n"
      "  cluster [--shards N] [--dir D] [--socket PATH | --port N]\n"
      "          [--jobs N] [--cache-entries N] [--hedge-ms N]\n"
      "          + the proxy resilience flags above\n"
      "          fork N vppbd shards under D + serve a proxy over them\n"
      "  request <predict|simulate|analyze|stats|health|metricsdump|\n"
      "           tracedump>\n"
      "          [trace] [--socket PATH | --port N] [--deadline-ms N]\n"
      "          [--timeout-ms N] [--retries N] [--client-id N] + the\n"
      "          predict/simulate/analyze flags above; --svg F saves the\n"
      "          simulate render; exit 3 overloaded, 4 deadline, 5 budget\n"
      "          exceeded, 6 poisoned, 7 quota exceeded, 8 SLO burning\n"
      "          (health only), 9 authentication rejected\n"
      "          --timeline prints the per-stage waterfall of this\n"
      "          request (queue/admission/cache/compile/simulate/...);\n"
      "          --trace-id N tags the request with a chosen distributed\n"
      "          trace id (0 = mint one when --timeline is set)\n"
      "  stats [--watch] [--interval-ms N] [--count N]\n"
      "        live daemon counter view (stats request in a loop)\n"
      "  top [--interval-ms N] [--count N]\n"
      "        live per-shard dashboard: rps, p99, SLO burn rates,\n"
      "        brownout/stale counters (against a proxy or a vppbd)\n"
      "  netem --target EP [--socket PATH | --port N] [--schedule S]\n"
      "        [--seed N]\n"
      "        fault-injection relay between two vppb endpoints; S is\n"
      "        comma-separated delay-ms:N drop:P partition:START:DUR\n"
      "        half-open:N trickle:B (seeded, reproducible)\n"
      "  trace-collect [--out F] [--socket PATH | --port N]\n"
      "        drain span rings cluster-wide into one clock-aligned\n"
      "        Chrome trace JSON (pid = shard id, 0 = proxy); load it\n"
      "        at ui.perfetto.dev\n"
      "  serve/proxy/cluster accept SLO objectives (--slo-p99-ms MS,\n"
      "  --slo-availability F e.g. 0.999): stats/health/top surface\n"
      "  multi-window burn rates; health exits 8 while burning\n"
      "  info/predict/simulate/analyze/convert accept --salvage: load the\n"
      "  longest valid prefix of a damaged trace instead of failing\n"
      "  workload names must be exact or a unique prefix of >= 4 chars\n"
      "  serve/proxy TCP listeners run the v8 challenge-response\n"
      "  handshake; --auth-key-file F (or $VPPB_AUTH_KEY) makes the key\n"
      "  proof mandatory, and request uses the same flag/env to answer.\n"
      "  Partition tolerance knobs: --connect-timeout-ms,\n"
      "  --idle-timeout-ms, --frame-deadline-ms, --max-request-frame-mb\n"
      "  global: --profile F (or $VPPB_PROFILE) writes a Chrome trace of\n"
      "  the run; --log-level L / --log-json override $VPPB_LOG\n");
  return 2;
}

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  for (const auto& app : workloads::splash_suite()) {
    std::string key = app.name;
    for (char& c : key) c = static_cast<char>(std::tolower(c));
    names.push_back(key);
  }
  names.insert(names.end(), {"prodcons-naive", "prodcons-tuned", "forkjoin",
                             "pipeline"});
  return names;
}

/// Accepts an exact workload name or a unique prefix of at least 4
/// characters; anything else — a typo like "radixsort", an ambiguous or
/// too-short prefix — errors with the candidate list, instead of the
/// old behaviour of silently running whatever shared 5 characters.
std::string resolve_workload_name(const std::string& name) {
  const std::vector<std::string> names = workload_names();
  std::vector<std::string> matches;
  for (const auto& n : names) {
    if (n == name) return n;
    if (name.size() >= 4 && n.size() > name.size() &&
        n.compare(0, name.size(), name) == 0) {
      matches.push_back(n);
    }
  }
  if (matches.size() == 1) return matches.front();
  std::string msg = matches.size() > 1
                        ? "ambiguous workload '" + name + "'; matches:"
                        : "unknown workload '" + name + "'; workloads:";
  for (const auto& n : (matches.size() > 1 ? matches : names)) msg += ' ' + n;
  throw Error(msg);
}

std::function<void()> workload_by_name(const std::string& given, int threads,
                                       double scale) {
  const std::string name = resolve_workload_name(given);
  for (const auto& app : workloads::splash_suite()) {
    std::string key = app.name;
    for (char& c : key) c = static_cast<char>(std::tolower(c));
    if (key == name) {
      return [app, threads, scale]() {
        app.run(workloads::SplashParams{threads, scale});
      };
    }
  }
  if (name == "prodcons-naive" || name == "prodcons-tuned") {
    workloads::ProdConsParams p;
    p.producers = 30 * threads / 8 + 10;
    p.consumers = p.producers / 2;
    p.items_per_producer = 10;
    const bool tuned = name == "prodcons-tuned";
    return [p, tuned]() {
      if (tuned) {
        workloads::prodcons_tuned(p);
      } else {
        workloads::prodcons_naive(p);
      }
    };
  }
  if (name == "forkjoin") {
    return [threads, scale]() {
      workloads::fork_join(threads, SimTime::millis(20).scaled(scale));
    };
  }
  if (name == "pipeline") {
    return [threads, scale]() {
      workloads::pipeline(threads, 50,
                          SimTime::micros(400).scaled(scale));
    };
  }
  throw Error("unknown workload '" + name + "'");
}

/// Budgets for an offline run, from the shared --max-* flags.  The
/// returned guard is unarmed (all zero) unless the user set a flag, so
/// the default CLI path stays the guarded-but-unlimited fast path.
core::RunLimits cli_limits(Flags& flags) {
  core::RunLimits limits;
  limits.max_steps = static_cast<std::uint64_t>(flags.i64("max-steps"));
  limits.max_sim_ms = flags.i64("max-sim-ms");
  limits.max_result_bytes =
      static_cast<std::uint64_t>(flags.i64("max-result-mb")) << 20;
  limits.max_wall_ms = flags.i64("max-wall-ms");
  return limits;
}

/// Loads a trace honoring --salvage: in salvage mode a damaged file
/// yields its longest valid prefix, with the recovery report on stderr.
trace::Trace load_trace(Flags& flags, const std::string& path) {
  if (!flags.boolean("salvage")) return trace::load_any_file(path);
  trace::LoadOptions opt;
  opt.salvage = true;
  trace::LoadReport report;
  trace::Trace t = trace::load_any_file(path, opt, &report);
  // summary() already lists each issue with its byte offset.
  obs::logf(obs::LogLevel::kWarn, "cli", "salvage: %s",
            report.summary().c_str());
  return t;
}

int cmd_gen(Flags& flags) {
  if (flags.positional().size() < 2) return usage();
  const int threads = static_cast<int>(flags.i64("threads"));
  const auto body =
      workload_by_name(flags.positional()[1], threads, flags.dbl("scale"));
  sol::Program program;
  const std::string out = flags.str("out");
  rec::Recorder::Options ropts;
  if (flags.boolean("crash-safe")) {
    // The chunked live log IS the output: it is complete by the time
    // record_program returns, and it would have been (up to the last
    // unsealed chunk) even if the workload had died mid-run.
    ropts.live_log_path = out;
    ropts.live_chunk_records =
        static_cast<std::size_t>(flags.i64("chunk-records"));
    ropts.install_crash_handlers = true;
  }
  const trace::Trace t = rec::record_program(program, body, ropts);
  if (!flags.boolean("crash-safe")) {
    if (flags.boolean("binary")) {
      trace::save_binary_file(t, out);
    } else {
      trace::save_file(t, out);
    }
  }
  std::printf("recorded %zu events over %s -> %s%s\n", t.records.size(),
              t.duration().to_string().c_str(), out.c_str(),
              flags.boolean("crash-safe") ? " (crash-safe chunked log)" : "");
  return 0;
}

int cmd_info(Flags& flags) {
  if (flags.positional().size() < 2) return usage();
  const trace::Trace t = load_trace(flags, flags.positional()[1]);
  const trace::TraceStats stats = trace::compute_stats(t);
  std::printf("trace: %s\n", flags.positional()[1].c_str());
  std::printf("  records:    %zu (%zu threads)\n", stats.records,
              stats.threads);
  std::printf("  duration:   %s (uni-processor)\n",
              stats.duration.to_string().c_str());
  std::printf("  event rate: %.0f calls/s\n", stats.events_per_second);
  std::printf("  threads:\n");
  for (const auto& meta : t.threads) {
    std::printf("    T%-4d %-16s start=%s%s\n", meta.tid,
                t.strings.get(meta.name).c_str(),
                t.strings.get(meta.start_func).c_str(),
                meta.bound ? " [bound]" : "");
  }
  std::printf("  calls by primitive:\n");
  for (const auto& [op, n] : stats.per_op) {
    std::printf("    %-18s %zu\n",
                std::string(trace::op_name(op)).c_str(), n);
  }
  return 0;
}

int cmd_check(Flags& flags) {
  if (flags.positional().size() < 2) return usage();
  const trace::Trace t = load_trace(flags, flags.positional()[1]);
  const trace::LintReport report = trace::lint(t);
  std::printf("%s", report.to_string().c_str());
  if (report.errors > 0) return 4;
  if (report.warnings > 0) return 3;
  return 0;
}

int cmd_predict(Flags& flags) {
  if (flags.positional().size() < 2) return usage();
  const core::RunGuard guard(cli_limits(flags));
  // The load goes through a (one-shot, unbounded) TraceCache so the CLI
  // exercises the same path the daemon serves from — and a --profile of
  // a predict run shows cache.get/cache.load spans next to the engine
  // phases.  Salvage mode bypasses it: the cache refuses damaged files.
  server::TraceCache cache(1, std::numeric_limits<std::size_t>::max());
  std::shared_ptr<const server::TraceCache::Entry> entry;
  core::CompiledTrace salvaged;
  if (flags.boolean("salvage")) {
    salvaged = core::compile(load_trace(flags, flags.positional()[1]), &guard);
  } else {
    entry = cache.get(flags.positional()[1], &guard);
  }
  const core::CompiledTrace& compiled = entry ? entry->compiled : salvaged;
  core::SimConfig base;
  base.sched.lwps = static_cast<int>(flags.i64("lwps"));
  base.hw.comm_delay = SimTime::micros(flags.i64("comm-delay-us"));
  std::vector<int> cpu_counts;
  for (int cpus = 1; cpus <= flags.i64("max-cpus"); cpus *= 2)
    cpu_counts.push_back(cpus);
  std::vector<core::SimResult> results;
  core::SweepOptions opt;
  opt.jobs = util::ThreadPool::resolve_jobs(static_cast<int>(flags.i64("jobs")));
  opt.results = &results;
  opt.guard = &guard;
  const core::SpeedupCurve curve =
      core::sweep_cpus(compiled, cpu_counts, base, opt);
  TextTable table;
  table.header({"CPUs", "speed-up", "efficiency"});
  for (const auto& p : curve.points()) {
    table.row({strprintf("%d", p.cpus), strprintf("%.2f", p.speedup),
               strprintf("%.0f%%", 100.0 * p.efficiency)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nAmdahl fit: serial fraction %.1f%%; efficiency stays >= "
              "50%% up to %d CPUs\n",
              100.0 * curve.amdahl_serial_fraction(), curve.knee(0.5));
  std::printf("sweep digest: %016llx\n",
              static_cast<unsigned long long>(core::digest(results)));
  return 0;
}

int cmd_simulate(Flags& flags) {
  if (flags.positional().size() < 2) return usage();
  const core::RunGuard guard(cli_limits(flags));
  const trace::Trace t = load_trace(flags, flags.positional()[1]);
  core::SimConfig cfg;
  cfg.hw.cpus = static_cast<int>(flags.i64("cpus"));
  cfg.sched.lwps = static_cast<int>(flags.i64("lwps"));
  const core::SimResult r = core::simulate(t, cfg, &guard);
  std::printf("predicted %s on %d CPUs (speed-up %.2f, %zu events, "
              "digest %016llx)\n\n",
              r.total.to_string().c_str(), cfg.hw.cpus, r.speedup,
              r.events.size(),
              static_cast<unsigned long long>(core::digest(r)));
  viz::Visualizer v(r, t);
  v.compress_threads();
  const int columns = static_cast<int>(flags.i64("columns"));
  std::printf("%s\n%s\n%s", viz::render_parallelism_ascii(v, columns, 8).c_str(),
              viz::render_flow_ascii(v, columns).c_str(),
              viz::render_lwp_ascii(v, columns).c_str());
  std::printf("\nper-CPU: ");
  for (const auto& c : r.cpu_stats) {
    std::printf("cpu%d %.0f%%  ", c.cpu,
                100.0 * c.busy.seconds_d() /
                    std::max(1e-12, r.total.seconds_d()));
  }
  std::printf("\nLWPs used: %zu\n", r.lwp_stats.size());
  if (!flags.str("svg").empty()) {
    util::atomic_write_file(flags.str("svg"),
                            viz::render_svg(v, viz::RenderOptions{}));
    std::printf("wrote %s\n", flags.str("svg").c_str());
  }
  return 0;
}

int cmd_analyze(Flags& flags) {
  if (flags.positional().size() < 2) return usage();
  const core::RunGuard guard(cli_limits(flags));
  const trace::Trace t = load_trace(flags, flags.positional()[1]);
  core::SimConfig cfg;
  cfg.hw.cpus = static_cast<int>(flags.i64("cpus"));
  const core::SimResult r = core::simulate(t, cfg, &guard);
  const viz::AnalysisReport report = viz::analyze(r, t);
  std::printf("simulated on %d CPUs: speed-up %.2f\n\n%s", cfg.hw.cpus,
              r.speedup, report.to_string().c_str());
  std::printf("\nthread utilization (run/ready/blocked/sleep %%):\n");
  for (const auto& u : report.utilization) {
    std::printf("  T%-4d %-16s %3.0f / %3.0f / %3.0f / %3.0f\n", u.tid,
                u.name.c_str(), 100 * u.running_fraction,
                100 * u.runnable_fraction, 100 * u.blocked_fraction,
                100 * u.sleeping_fraction);
  }
  return 0;
}

int cmd_validate(Flags& flags) {
  if (flags.positional().size() < 2) return usage();
  const double scale = flags.dbl("scale");
  std::vector<int> cpu_counts;
  for (const auto& f : split(flags.str("cpus-list"), ',')) {
    std::int64_t v = 0;
    if (!parse_i64(f, v)) throw Error("bad --cpus-list");
    cpu_counts.push_back(static_cast<int>(v));
  }
  machine::MachineConfig mc;
  mc.repetitions = static_cast<int>(flags.i64("reps"));
  const std::string name = flags.positional()[1];
  const machine::ValidationReport report = machine::validate_workload(
      name,
      [&name, scale](int threads) {
        workload_by_name(name, threads, scale)();
      },
      cpu_counts, mc);
  TextTable table;
  table.header({"CPUs", "real (min-max)", "predicted", "error"});
  for (const auto& p : report.points) {
    table.row({strprintf("%d", p.cpus),
               strprintf("%.2f (%.2f-%.2f)", p.real_mid, p.real_min,
                         p.real_max),
               strprintf("%.2f", p.predicted),
               strprintf("%.1f%%", 100.0 * p.error)});
  }
  std::printf("%s\nmax |error| %.1f%%\n", table.render().c_str(),
              100.0 * report.max_abs_error());
  return 0;
}

int cmd_serve(Flags& flags) {
  server::ServerOptions opt;
  opt.unix_path = flags.str("socket");
  opt.tcp_port = static_cast<std::uint16_t>(flags.i64("port"));
  if (opt.unix_path.empty() && opt.tcp_port == 0) opt.unix_path = "vppb.sock";
  opt.jobs = static_cast<int>(flags.i64("jobs"));
  opt.admission_limit = static_cast<int>(flags.i64("admission"));
  opt.cache_entries = static_cast<std::size_t>(flags.i64("cache-entries"));
  opt.cache_bytes = static_cast<std::size_t>(flags.i64("cache-mb")) << 20;
  opt.max_steps = static_cast<std::uint64_t>(flags.i64("max-steps"));
  opt.max_sim_ms = flags.i64("max-sim-ms");
  opt.max_result_mb = static_cast<std::uint64_t>(flags.i64("max-result-mb"));
  opt.max_wall_ms = flags.i64("max-wall-ms");
  opt.watchdog_interval_ms = flags.i64("watchdog-ms");
  opt.watchdog_escalate_ms = flags.i64("escalate-ms");
  opt.poison_strikes = static_cast<int>(flags.i64("poison-strikes"));
  opt.quarantine_ms = flags.i64("quarantine-ms");
  opt.per_client_limit = static_cast<int>(flags.i64("per-client"));
  opt.shard_id = static_cast<std::uint64_t>(flags.i64("shard-id"));
  opt.slo_p99_ms = flags.dbl("slo-p99-ms");
  opt.slo_availability = flags.dbl("slo-availability");
  opt.auth_key = server::load_auth_key(flags.str("auth-key-file"));
  opt.idle_timeout_ms = flags.i64("idle-timeout-ms");
  opt.frame_deadline_ms = flags.i64("frame-deadline-ms");
  opt.max_request_frame_bytes =
      static_cast<std::size_t>(flags.i64("max-request-frame-mb")) << 20;

  // Block the shutdown signals before any thread exists, so every
  // server/pool thread inherits the mask and only sigwait sees them.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  server::Server srv(opt);
  srv.start();
  std::printf("vppbd: serving on %s (jobs %d, admission %d, cache %zu "
              "entries / %lld MiB)\n",
              srv.endpoint().c_str(),
              util::ThreadPool::resolve_jobs(opt.jobs), opt.admission_limit,
              opt.cache_entries,
              static_cast<long long>(opt.cache_bytes >> 20));
  // An armed fault plan is announced by the server itself, as a
  // structured kWarn line.
  std::fflush(stdout);

  int sig = 0;
  sigwait(&set, &sig);
  std::printf("vppbd: caught %s, draining in-flight requests...\n",
              sig == SIGTERM ? "SIGTERM" : "SIGINT");
  std::fflush(stdout);
  srv.stop();
  std::printf("vppbd: drained, bye\n");
  return 0;
}

/// Shared by `vppb proxy` and `vppb cluster`: run an already-started
/// proxy until SIGINT/SIGTERM, then drain.  The signal mask must be
/// blocked by the caller *before* the proxy's threads exist.
int run_proxy_until_signal(cluster::Proxy& proxy, sigset_t* set) {
  std::printf("vppb proxy: routing on %s across %zu shards (%zu up)\n",
              proxy.endpoint().c_str(), proxy.membership().shard_count(),
              proxy.membership().up_count());
  std::fflush(stdout);
  int sig = 0;
  sigwait(set, &sig);
  std::printf("vppb proxy: caught %s, draining...\n",
              sig == SIGTERM ? "SIGTERM" : "SIGINT");
  std::fflush(stdout);
  proxy.stop();
  std::printf("vppb proxy: drained, bye\n");
  return 0;
}

cluster::ProxyOptions proxy_options_from_flags(Flags& flags) {
  cluster::ProxyOptions opt;
  opt.unix_path = flags.str("socket");
  opt.tcp_port = static_cast<std::uint16_t>(flags.i64("port"));
  if (opt.unix_path.empty() && opt.tcp_port == 0)
    opt.unix_path = "vppb-proxy.sock";
  opt.hedge_ms = flags.i64("hedge-ms");
  opt.forward_timeout_ms = static_cast<int>(flags.i64("forward-timeout-ms"));
  opt.membership.vnodes = static_cast<int>(flags.i64("vnodes"));
  opt.quota.rps = flags.dbl("quota-rps");
  opt.quota.burst = flags.dbl("quota-burst");
  opt.replicas = static_cast<int>(flags.i64("replicas"));
  opt.brownout_min_live_pct =
      static_cast<int>(flags.i64("brownout-live-pct"));
  opt.brownout_max_inflight =
      static_cast<int>(flags.i64("brownout-inflight"));
  opt.stale_ms = flags.i64("stale-ms");
  opt.slo_p99_ms = flags.dbl("slo-p99-ms");
  opt.slo_availability = flags.dbl("slo-availability");
  opt.auth_key = server::load_auth_key(flags.str("auth-key-file"));
  opt.idle_timeout_ms = flags.i64("idle-timeout-ms");
  opt.frame_deadline_ms = flags.i64("frame-deadline-ms");
  opt.max_request_frame_bytes =
      static_cast<std::size_t>(flags.i64("max-request-frame-mb")) << 20;
  if (flags.i64("connect-timeout-ms") > 0)
    opt.membership.dial_timeout_ms =
        static_cast<int>(flags.i64("connect-timeout-ms"));
  return opt;
}

int cmd_proxy(Flags& flags) {
  cluster::ProxyOptions opt = proxy_options_from_flags(flags);
  std::uint64_t next_id = 1;
  for (const auto spec : split(flags.str("shards"), ',')) {
    if (spec.empty()) continue;
    opt.shards.push_back(
        cluster::ShardEndpoint::parse(next_id++, std::string(spec)));
  }
  if (opt.shards.empty())
    throw Error("proxy needs --shards EP[,EP...] (unix socket paths "
                "or loopback ports)");

  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  cluster::Proxy proxy(std::move(opt));
  proxy.start();
  return run_proxy_until_signal(proxy, &set);
}

int cmd_cluster(Flags& flags) {
  cluster::ClusterOptions copt;
  // /proc/self/exe: the running binary re-execs itself as the shards,
  // so a cluster is always version-homogeneous.
  copt.exe = "/proc/self/exe";
  copt.dir = flags.str("dir");
  std::int64_t nshards = 0;
  if (!parse_i64(flags.str("shards"), nshards) || nshards < 1)
    throw Error("cluster: --shards must be a shard count >= 1");
  copt.shards = static_cast<int>(nshards);
  copt.jobs = static_cast<int>(flags.i64("jobs"));
  copt.cache_entries = static_cast<std::size_t>(flags.i64("cache-entries"));
  copt.serve_args = {"--cache-mb", std::to_string(flags.i64("cache-mb")),
                     "--per-client", std::to_string(flags.i64("per-client"))};
  // Shards inherit the cluster's SLO objectives, so per-shard burn
  // rates in `vppb top` are judged against the same targets the proxy
  // judges the whole cluster by.
  if (flags.dbl("slo-p99-ms") > 0.0) {
    copt.serve_args.push_back("--slo-p99-ms");
    copt.serve_args.push_back(strprintf("%g", flags.dbl("slo-p99-ms")));
  }
  if (flags.dbl("slo-availability") > 0.0) {
    copt.serve_args.push_back("--slo-availability");
    copt.serve_args.push_back(strprintf("%g", flags.dbl("slo-availability")));
  }

  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  cluster::LocalCluster shards(copt);
  shards.start();
  cluster::ProxyOptions popt = proxy_options_from_flags(flags);
  popt.shards = shards.shards();
  cluster::Proxy proxy(std::move(popt));
  proxy.start();
  const int rc = run_proxy_until_signal(proxy, &set);
  shards.stop();
  std::printf("vppb cluster: %d shard(s) drained\n", copt.shards);
  return rc;
}

server::Client connect_client(Flags& flags) {
  const int ct = static_cast<int>(flags.i64("connect-timeout-ms"));
  const std::string sock = flags.str("socket");
  if (!sock.empty()) return server::Client::connect_unix(sock, ct);
  const auto port = flags.i64("port");
  if (port != 0) {
    // --auth-key-file wins; otherwise $VPPB_AUTH_KEY (load_auth_key's
    // ambient fallback) so scripted clients need no flag.
    return server::Client::connect_tcp(
        flags.str("host"), static_cast<std::uint16_t>(port),
        server::load_auth_key(flags.str("auth-key-file")), ct);
  }
  return server::Client::connect_unix("vppb.sock", ct);
}

/// A fresh distributed trace id: clock + pid, SplitMix64-finished so
/// two requests minted in the same tick still diverge.  Uniqueness over
/// the life of one trace-collect window is all that is needed.
std::uint64_t mint_trace_id() {
  std::uint64_t z = static_cast<std::uint64_t>(
                        std::chrono::steady_clock::now()
                            .time_since_epoch()
                            .count()) ^
                    (static_cast<std::uint64_t>(::getpid()) << 32);
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z != 0 ? z : 1;
}

/// The `--timeline` waterfall: one bar per stage, indented by nesting
/// depth, scaled to the slowest stage end.  Depth-0 durations sum to
/// (at most) the measured request latency — nested stages re-describe
/// time their parent already covers and are excluded from the sum.
void print_timeline(const std::vector<server::StageSpan>& timeline,
                    double measured_ms) {
  std::vector<server::StageSpan> stages = timeline;
  std::stable_sort(stages.begin(), stages.end(),
                   [](const server::StageSpan& a,
                      const server::StageSpan& b) {
                     return a.start_us < b.start_us;
                   });
  std::int64_t end_us = 1;
  std::int64_t sum_us = 0;
  for (const server::StageSpan& s : stages) {
    end_us = std::max(end_us,
                      s.start_us + (s.dur_us > 0 ? s.dur_us : 0));
    if (s.depth == 0 && s.dur_us >= 0) sum_us += s.dur_us;
  }
  std::printf("\nrequest timeline (measured %.2f ms, stage sum %.2f ms):\n",
              measured_ms, sum_us / 1000.0);
  constexpr int kBar = 48;
  for (const server::StageSpan& s : stages) {
    std::string label(static_cast<std::size_t>(s.depth) * 2, ' ');
    label += s.name;
    if (s.dur_us < 0) {
      // Marker (hedge / failover / stale-serve): an instant, not a
      // duration.
      const int at = static_cast<int>(s.start_us * kBar / end_us);
      std::printf("  %-28s      ---  |%*s*%*s|\n", label.c_str(), at, "",
                  kBar - at - 1, "");
      continue;
    }
    const int from = static_cast<int>(s.start_us * kBar / end_us);
    const int width = std::max(
        1, static_cast<int>(s.dur_us * kBar / end_us));
    const int to = std::min(kBar, from + width);
    std::string bar(static_cast<std::size_t>(kBar), ' ');
    for (int i = from; i < to; ++i) bar[static_cast<std::size_t>(i)] = '#';
    std::printf("  %-28s %8.2fms |%s|\n", label.c_str(), s.dur_us / 1000.0,
                bar.c_str());
  }
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
}

/// `vppb trace-collect`: drain the endpoint's span rings (via the
/// proxy, every shard's plus the proxy's own) and write one merged
/// Chrome trace JSON.  All processes timestamp spans in absolute unix
/// ns, so alignment is a single subtraction of the earliest start; the
/// pid lane is the shard id (0 = proxy).
int cmd_trace_collect(Flags& flags) {
  server::Request req;
  req.type = server::ReqType::kTraceDump;
  server::Client client = connect_client(flags);
  server::RetryPolicy policy;
  policy.max_attempts = static_cast<int>(flags.i64("retries")) + 1;
  policy.request_timeout_ms = static_cast<int>(flags.i64("timeout-ms"));
  const server::Response r = client.call_retry(req, policy);
  if (r.status != server::Status::kOk) {
    std::fprintf(stderr, "vppb: trace-collect failed: %s\n",
                 r.error.c_str());
    return 1;
  }
  if (r.stats.trace_dropped > 0) {
    std::fprintf(stderr,
                 "vppb: warning: %llu span(s) were overwritten in full "
                 "rings before this collection — the merged trace is "
                 "truncated\n",
                 static_cast<unsigned long long>(r.stats.trace_dropped));
  }

  std::int64_t min_ns = std::numeric_limits<std::int64_t>::max();
  for (const server::WireSpan& w : r.spans)
    min_ns = std::min(min_ns, w.start_unix_ns);
  if (r.spans.empty()) min_ns = 0;

  std::string json = "{\"traceEvents\":[";
  bool first = true;
  for (const server::WireSpan& w : r.spans) {
    if (!first) json += ',';
    first = false;
    json += "\n{\"name\":\"";
    json_escape_into(json, w.name);
    json += "\",\"cat\":\"";
    json_escape_into(json, w.cat);
    const double ts = static_cast<double>(w.start_unix_ns - min_ns) / 1000.0;
    json += strprintf("\",\"pid\":%llu,\"tid\":%u,\"ts\":%.3f",
                      static_cast<unsigned long long>(w.pid), w.tid, ts);
    if (w.dur_ns >= 0) {
      json += strprintf(",\"ph\":\"X\",\"dur\":%.3f",
                        static_cast<double>(w.dur_ns) / 1000.0);
    } else {
      json += ",\"ph\":\"i\",\"s\":\"t\"";
    }
    const bool have_arg = !w.arg_name.empty();
    if (w.trace_id != 0 || have_arg) {
      json += ",\"args\":{";
      if (w.trace_id != 0)
        json += strprintf("\"trace_id\":\"%016llx\"",
                          static_cast<unsigned long long>(w.trace_id));
      if (have_arg) {
        if (w.trace_id != 0) json += ',';
        json += '"';
        json_escape_into(json, w.arg_name);
        json += strprintf("\":%lld",
                          static_cast<long long>(w.arg_value));
      }
      json += '}';
    }
    json += '}';
  }
  json += "\n]}\n";
  const std::string out = flags.str("trace-out");
  util::atomic_write_file(out, json);
  // One lane per process in the merged view.
  std::vector<std::uint64_t> pids;
  for (const server::WireSpan& w : r.spans)
    if (std::find(pids.begin(), pids.end(), w.pid) == pids.end())
      pids.push_back(w.pid);
  std::printf("wrote %zu span(s) from %zu process(es) to %s\n",
              r.spans.size(), pids.size(), out.c_str());
  return 0;
}

/// `vppb top`: the live per-shard dashboard.  Re-issues the stats
/// request on an interval and renders one row per shard — rps from the
/// request-count delta, latency p99, the 5m burn rates — plus a cluster
/// footer with the brownout/stale counters and the SLO verdict.
int cmd_top(Flags& flags) {
  server::Request req;
  req.type = server::ReqType::kStats;
  const std::int64_t interval_ms =
      std::max<std::int64_t>(1, flags.i64("interval-ms"));
  std::int64_t count = flags.i64("count");
  if (count <= 0) count = std::numeric_limits<std::int64_t>::max();

  std::optional<server::Client> client;
  std::unordered_map<std::uint64_t, std::uint64_t> prev_requests;
  bool have_prev = false;
  for (std::int64_t taken = 0; taken < count;) {
    server::Response r;
    try {
      if (!client) client.emplace(connect_client(flags));
      r = client->call(req);
    } catch (const Error& e) {
      client.reset();
      std::printf("\033[H\033[2Jreconnecting: %s\n", e.what());
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      continue;
    }
    if (r.status != server::Status::kOk) {
      std::fprintf(stderr, "vppb: top failed: %s\n", r.error.c_str());
      return 1;
    }
    std::printf("\033[H\033[2J");
    TextTable table;
    table.header({"shard", "state", "rps", "p99 ms", "lat burn 5m",
                  "avail burn 5m", "requests", "errors"});
    const auto row = [&](std::uint64_t id, const char* state,
                         const server::StatsBody& s) {
      double rps = 0.0;
      if (have_prev) {
        const auto it = prev_requests.find(id);
        const std::uint64_t before =
            it != prev_requests.end() ? it->second : 0;
        if (s.requests >= before)
          rps = static_cast<double>(s.requests - before) * 1000.0 /
                static_cast<double>(interval_ms);
      }
      prev_requests[id] = s.requests;
      table.row({strprintf("%llu", static_cast<unsigned long long>(id)),
                 state, strprintf("%.1f", rps),
                 strprintf("%.2f", s.p99_us / 1000.0),
                 strprintf("%.2f", s.lat_burn_5m),
                 strprintf("%.2f", s.avail_burn_5m),
                 strprintf("%llu",
                           static_cast<unsigned long long>(s.requests)),
                 strprintf("%llu",
                           static_cast<unsigned long long>(s.errors))});
    };
    if (r.shards.empty()) {
      row(r.shard_id, "up", r.stats);
    } else {
      for (const server::ShardInfo& sh : r.shards)
        row(sh.shard_id, sh.healthy ? "up" : "down", sh.stats);
    }
    std::printf("%s", table.render().c_str());
    if (!r.shards.empty()) {
      std::printf("cluster: %llu/%llu shards live, %llu brownout sheds, "
                  "%llu stale serves\n",
                  static_cast<unsigned long long>(r.live_shards),
                  static_cast<unsigned long long>(r.total_shards),
                  static_cast<unsigned long long>(r.stats.brownout_sheds),
                  static_cast<unsigned long long>(r.stats.stale_serves));
    }
    std::printf("%s", server::render_slo_text(r.stats).c_str());
    if (r.slo_burning) std::printf("SLO BURNING\n");
    std::fflush(stdout);
    have_prev = true;
    if (++taken < count)
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}

int cmd_request(Flags& flags) {
  if (flags.positional().size() < 2) return usage();
  const std::string& what = flags.positional()[1];
  server::Request req;
  if (what == "predict") {
    req.type = server::ReqType::kPredict;
  } else if (what == "simulate") {
    req.type = server::ReqType::kSimulate;
  } else if (what == "analyze") {
    req.type = server::ReqType::kAnalyze;
  } else if (what == "stats") {
    req.type = server::ReqType::kStats;
  } else if (what == "health") {
    req.type = server::ReqType::kHealth;
  } else if (what == "metricsdump") {
    req.type = server::ReqType::kMetricsDump;
  } else if (what == "tracedump") {
    req.type = server::ReqType::kTraceDump;
  } else {
    throw Error("unknown request type '" + what +
                "' (predict simulate analyze stats health metricsdump "
                "tracedump)");
  }
  if (req.type == server::ReqType::kPredict ||
      req.type == server::ReqType::kSimulate ||
      req.type == server::ReqType::kAnalyze) {
    if (flags.positional().size() < 3) return usage();
    // The daemon resolves paths in its own working directory; send an
    // absolute path so the client's idea of the trace wins.
    req.trace_path =
        std::filesystem::absolute(flags.positional()[2]).string();
  }
  req.cpus = static_cast<int>(flags.i64("cpus"));
  req.lwps = static_cast<int>(flags.i64("lwps"));
  req.max_cpus = static_cast<int>(flags.i64("max-cpus"));
  req.comm_delay_us = flags.i64("comm-delay-us");
  req.want_svg = !flags.str("svg").empty();
  req.deadline_ms = flags.i64("deadline-ms");
  req.client_id = static_cast<std::uint64_t>(flags.i64("client-id"));
  req.want_timeline = flags.boolean("timeline");
  if (flags.i64("trace-id") != 0 || req.want_timeline) {
    const std::uint64_t given =
        static_cast<std::uint64_t>(flags.i64("trace-id"));
    req.trace_id = given != 0 ? given : mint_trace_id();
    req.sampled = true;
  }

  server::Client client = connect_client(flags);
  server::RetryPolicy policy;
  policy.max_attempts = static_cast<int>(flags.i64("retries")) + 1;
  policy.request_timeout_ms = static_cast<int>(flags.i64("timeout-ms"));
  const auto rt0 = std::chrono::steady_clock::now();
  const server::Response r = client.call_retry(req, policy);
  const double measured_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - rt0)
          .count();
  if (r.status == server::Status::kOverloaded) {
    std::fprintf(stderr, "vppb: %s\n", r.error.c_str());
    return 3;
  }
  if (r.status == server::Status::kDeadlineExceeded) {
    std::fprintf(stderr, "vppb: %s\n", r.error.c_str());
    return 4;
  }
  if (r.status == server::Status::kBudgetExceeded) {
    std::fprintf(stderr, "vppb: %s\n", r.error.c_str());
    return 5;
  }
  if (r.status == server::Status::kPoisoned) {
    std::fprintf(stderr, "vppb: %s\n", r.error.c_str());
    return 6;
  }
  if (r.status == server::Status::kQuotaExceeded) {
    std::fprintf(stderr, "vppb: %s\n", r.error.c_str());
    return 7;
  }
  if (r.status == server::Status::kAuthFailed) {
    std::fprintf(stderr, "vppb: %s\n", r.error.c_str());
    return 9;
  }
  if (r.status == server::Status::kError) {
    std::fprintf(stderr, "vppb: server error: %s\n", r.error.c_str());
    return 1;
  }
  switch (r.type) {
    case server::ReqType::kPredict: {
      TextTable table;
      table.header({"CPUs", "speed-up", "efficiency"});
      for (const auto& p : r.points) {
        table.row({strprintf("%d", p.cpus), strprintf("%.2f", p.speedup),
                   strprintf("%.0f%%", 100.0 * p.efficiency)});
      }
      std::printf("%s", table.render().c_str());
      std::printf("\nAmdahl fit: serial fraction %.1f%%; efficiency stays "
                  ">= 50%% up to %d CPUs\n",
                  100.0 * r.serial_fraction, r.knee);
      std::printf("sweep digest: %016llx\n",
                  static_cast<unsigned long long>(r.digest));
      break;
    }
    case server::ReqType::kSimulate: {
      std::printf("predicted %s on %d CPUs (speed-up %.2f, %llu events, "
                  "digest %016llx)\n",
                  SimTime::nanos(r.total_ns).to_string().c_str(), r.cpus,
                  r.speedup, static_cast<unsigned long long>(r.events),
                  static_cast<unsigned long long>(r.digest));
      if (!flags.str("svg").empty()) {
        util::atomic_write_file(flags.str("svg"), r.svg);
        std::printf("wrote %s\n", flags.str("svg").c_str());
      }
      break;
    }
    case server::ReqType::kAnalyze:
      std::printf("simulated on %d CPUs: speed-up %.2f (digest %016llx)"
                  "\n\n%s",
                  r.cpus, r.speedup,
                  static_cast<unsigned long long>(r.digest),
                  r.report.c_str());
      break;
    case server::ReqType::kStats:
      // Cluster-aware: a proxy response carries a per-shard breakdown
      // after the merged table; a plain vppbd renders as before.
      std::printf("%s", server::render_cluster_stats_text(r).c_str());
      break;
    case server::ReqType::kHealth:
      std::printf("%s", server::render_health_text(r).c_str());
      break;
    case server::ReqType::kMetricsDump:
      // Prometheus text exposition, verbatim — pipe it at a scrape
      // endpoint or a file.
      std::printf("%s", r.report.c_str());
      break;
    case server::ReqType::kTraceDump:
      std::printf("%zu span(s) held in the endpoint's rings "
                  "(%llu overwritten); use `vppb trace-collect` for the "
                  "merged Chrome trace\n",
                  r.spans.size(),
                  static_cast<unsigned long long>(r.stats.trace_dropped));
      break;
  }
  if (!r.timeline.empty()) print_timeline(r.timeline, measured_ms);
  // Health is the probe an orchestrator keys restarts and paging on:
  // an SLO in breach must be visible in the exit code, not just the
  // text.
  if (req.type == server::ReqType::kHealth && r.slo_burning) return 8;
  return 0;
}

/// `vppb stats [--watch]`: the stats request in a loop, rendered with
/// the same code path as `vppb request stats`.  Against a proxy the
/// render gains a per-shard table; against a plain vppbd it is
/// unchanged.  In --watch mode a transient connection failure (daemon
/// restarting, proxy failing over) renders a "reconnecting" row and
/// retries with decorrelated-jitter backoff instead of exiting — a
/// dashboard must outlive the thing it watches.
int cmd_stats(Flags& flags) {
  server::Request req;
  req.type = server::ReqType::kStats;
  const bool watch = flags.boolean("watch");
  const std::int64_t interval_ms = std::max<std::int64_t>(
      1, flags.i64("interval-ms"));
  std::int64_t count = flags.i64("count");
  if (count <= 0) count = watch ? std::numeric_limits<std::int64_t>::max() : 1;

  std::optional<server::Client> client;
  std::optional<server::Response> last_good;
  std::uint64_t rng = 0x2545f4914f6cdd1dULL;
  std::int64_t backoff_ms = 0;
  const auto next_backoff = [&rng, &backoff_ms]() {
    rng ^= rng >> 12;
    rng ^= rng << 25;
    rng ^= rng >> 27;
    const std::int64_t lo = 100, cap = 5000;
    const std::int64_t hi =
        std::max(lo, std::min(cap, backoff_ms > 0 ? backoff_ms * 3 : lo));
    backoff_ms = lo + static_cast<std::int64_t>(
                          (rng * 2685821657736338717ULL) %
                          static_cast<std::uint64_t>(hi - lo + 1));
    return backoff_ms;
  };

  for (std::int64_t taken = 0; taken < count;) {
    server::Response r;
    try {
      if (!client) client.emplace(connect_client(flags));
      r = client->call(req);
    } catch (const Error& e) {
      client.reset();  // the connection state is unknown; redial
      if (!watch) {
        std::fprintf(stderr, "vppb: stats failed: %s\n", e.what());
        return 1;
      }
      const std::int64_t wait = next_backoff();
      if (watch) std::printf("\033[H\033[2J");
      std::printf("reconnecting: %s (retry in %lld ms)\n", e.what(),
                  static_cast<long long>(wait));
      if (last_good) {
        // Keep the last-good SLO state on screen, grayed out, so the
        // operator watching a burn does not lose the picture while the
        // endpoint bounces.
        const std::string slo = server::render_slo_text(last_good->stats);
        if (!slo.empty())
          std::printf("\033[90mlast known (stale):\n%s\033[0m", slo.c_str());
      }
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
      continue;
    }
    backoff_ms = 0;  // a clean exchange resets the backoff schedule
    last_good = r;
    if (r.status != server::Status::kOk) {
      std::fprintf(stderr, "vppb: stats failed: %s\n", r.error.c_str());
      return 1;
    }
    if (watch) std::printf("\033[H\033[2J");  // home + clear
    std::printf("%s", server::render_cluster_stats_text(r).c_str());
    if (watch) std::fflush(stdout);
    if (++taken < count)
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}

/// `vppb netem`: the fault-injection relay as a standalone command, so
/// hostile-network experiments need no test harness — point a proxy's
/// --shards at the relay, point the relay's --target at the real shard,
/// and pick a schedule.
int cmd_netem(Flags& flags) {
  util::NetemOptions opt;
  opt.listen_unix = flags.str("socket");
  opt.listen_port = static_cast<std::uint16_t>(flags.i64("port"));
  const std::string target = flags.str("target");
  if (target.empty())
    throw Error("netem needs --target (a unix socket path, a port, or "
                "host:port)");
  const cluster::ShardEndpoint tep = cluster::ShardEndpoint::parse(1, target);
  opt.target_unix = tep.unix_path;
  opt.target_host = tep.host;
  opt.target_port = tep.tcp_port;
  opt.schedule = flags.str("schedule");
  opt.seed = static_cast<std::uint64_t>(flags.i64("seed"));
  if (flags.i64("connect-timeout-ms") > 0)
    opt.connect_timeout_ms = static_cast<int>(flags.i64("connect-timeout-ms"));

  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  util::NetemRelay relay(std::move(opt));
  relay.start();
  std::printf("vppb netem: relaying %s -> %s%s%s\n",
              relay.endpoint().c_str(), target.c_str(),
              flags.str("schedule").empty() ? "" : " with schedule ",
              flags.str("schedule").c_str());
  std::fflush(stdout);
  int sig = 0;
  sigwait(&set, &sig);
  relay.stop();
  std::printf("vppb netem: %llu connection(s), %llu cut, %llu bytes "
              "forwarded, %llu black-holed\n",
              static_cast<unsigned long long>(relay.connections()),
              static_cast<unsigned long long>(relay.cut_connections()),
              static_cast<unsigned long long>(relay.forwarded_bytes()),
              static_cast<unsigned long long>(relay.blackholed_bytes()));
  return 0;
}

int cmd_convert(Flags& flags) {
  if (flags.positional().size() < 3) return usage();
  const trace::Trace t = load_trace(flags, flags.positional()[1]);
  const std::string& out = flags.positional()[2];
  if (ends_with(out, ".bin")) {
    trace::save_binary_file(t, out);
  } else {
    trace::save_file(t, out);
  }
  std::printf("wrote %s (%zu records)\n", out.c_str(), t.records.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_i64("threads", 8, "worker threads for gen/validate");
  flags.define_double("scale", 0.2, "problem scale");
  flags.define_string("out", "vppb.trace", "gen: output file");
  flags.define_bool("binary", false, "gen: write the binary format");
  flags.define_i64("max-cpus", 16, "predict: largest CPU count");
  flags.define_i64("cpus", 8, "simulate/analyze: CPU count");
  flags.define_i64("lwps", 0, "LWP pool (0 = one per thread)");
  flags.define_i64("comm-delay-us", 0, "inter-CPU delay");
  flags.define_string("svg", "", "simulate: SVG output");
  flags.define_i64("columns", 110, "ASCII width");
  flags.define_string("cpus-list", "2,4,8", "validate: CPU counts");
  flags.define_i64("reps", 5, "validate: machine repetitions");
  flags.define_i64("jobs", 0,
                   "predict: parallel sweep workers (0 = all hardware "
                   "threads, 1 = serial)");
  flags.define_string("socket", "", "serve/request: unix socket path");
  flags.define_i64("port", 0, "serve/request: loopback TCP port");
  flags.define_bool("salvage", false,
                    "load the longest valid prefix of a damaged trace");
  flags.define_bool("crash-safe", false,
                    "gen: stream a chunked crash-safe log instead of "
                    "writing at exit");
  flags.define_i64("chunk-records", 1024,
                   "gen --crash-safe: records per sealed chunk");
  flags.define_i64("deadline-ms", 0,
                   "request: server-side deadline (0 = none)");
  flags.define_i64("timeout-ms", 0,
                   "request: client receive timeout (0 = wait forever)");
  flags.define_i64("retries", 0,
                   "request: retries on overload/transport failure");
  flags.define_i64("admission", 64,
                   "serve: max in-flight requests before overload");
  flags.define_i64("max-steps", 0,
                   "run budget: engine steps per run (0 = unlimited)");
  flags.define_i64("max-sim-ms", 0,
                   "run budget: simulated milliseconds (0 = unlimited)");
  flags.define_i64("max-result-mb", 0,
                   "run budget: result storage in MiB (0 = unlimited)");
  flags.define_i64("max-wall-ms", 0,
                   "run budget: wall-clock milliseconds (0 = unlimited)");
  flags.define_i64("watchdog-ms", 50,
                   "serve: watchdog scan interval (0 = no watchdog)");
  flags.define_i64("escalate-ms", 1000,
                   "serve: grace after a watchdog cancel before the "
                   "worker is abandoned and replaced");
  flags.define_i64("poison-strikes", 3,
                   "serve: crash/budget strikes before a trace is "
                   "quarantined (0 = never)");
  flags.define_i64("quarantine-ms", 30000,
                   "serve: quarantine window for poisoned traces");
  flags.define_i64("per-client", 0,
                   "serve: per-client in-flight limit (0 = off)");
  flags.define_i64("client-id", 0,
                   "request: identity for per-client fair admission "
                   "(0 = anonymous)");
  flags.define_i64("cache-entries", 16, "serve: compiled-trace cache slots");
  flags.define_i64("cache-mb", 512, "serve: compiled-trace cache budget");
  flags.define_i64("shard-id", 0,
                   "serve: shard identity reported in health/stats "
                   "(0 = standalone)");
  flags.define_string("shards", "2",
                      "proxy: comma-separated shard endpoints; "
                      "cluster: shard count");
  flags.define_string("dir", "vppb-cluster",
                      "cluster: directory for shard sockets");
  flags.define_i64("hedge-ms", 0,
                   "proxy/cluster: hedge window for routed requests "
                   "(0 = no hedging)");
  flags.define_i64("vnodes", 64, "proxy/cluster: ring points per shard");
  flags.define_i64("forward-timeout-ms", 30000,
                   "proxy/cluster: per-forward receive timeout "
                   "(0 = wait forever)");
  flags.define_double("quota-rps", 0.0,
                      "proxy/cluster: cluster-wide per-client rate quota "
                      "in requests/s (0 = off)");
  flags.define_double("quota-burst", 8.0,
                      "proxy/cluster: per-client quota burst allowance");
  flags.define_i64("replicas", 2,
                   "proxy/cluster: owner-walk length for compute "
                   "failover/hedging");
  flags.define_i64("brownout-live-pct", 0,
                   "proxy/cluster: shed cold computes when live shards "
                   "drop below this percent of configured (0 = off)");
  flags.define_i64("brownout-inflight", 0,
                   "proxy/cluster: shed cold computes at this many "
                   "proxy-level in-flight computes (0 = off)");
  flags.define_i64("stale-ms", 30000,
                   "proxy/cluster: oldest proxy-cached response servable "
                   "during brownout/outage (0 = never stale-serve)");
  flags.define_string("log-level", "",
                      "trace|debug|info|warn|error|off (overrides $VPPB_LOG)");
  flags.define_bool("log-json", false, "emit log lines as JSON objects");
  flags.define_string("profile", "",
                      "write a Chrome trace-event profile of this run "
                      "(also $VPPB_PROFILE)");
  flags.define_bool("watch", false, "stats: refresh until interrupted");
  flags.define_i64("interval-ms", 1000, "stats --watch: refresh period");
  flags.define_i64("count", 0, "stats: snapshots to take (0 = default)");
  flags.define_bool("timeline", false,
                    "request: print the per-stage waterfall of this "
                    "request");
  flags.define_i64("trace-id", 0,
                   "request: distributed trace id to propagate "
                   "(0 = mint one when --timeline is set)");
  flags.define_string("trace-out", "vppb-trace.json",
                      "trace-collect: merged Chrome trace output file");
  flags.define_double("slo-p99-ms", 0.0,
                      "serve/proxy/cluster: latency SLO — p99 of compute "
                      "requests under this many ms (0 = off)");
  flags.define_double("slo-availability", 0.0,
                      "serve/proxy/cluster: availability SLO as a success "
                      "fraction, e.g. 0.999 (0 = off)");
  flags.define_string("auth-key-file", "",
                      "shared key file for the v8 TCP handshake "
                      "(also $VPPB_AUTH_KEY; unix sockets never "
                      "authenticate)");
  flags.define_i64("connect-timeout-ms", 0,
                   "request/proxy/netem: bound on connect; a black-holed "
                   "address fails in this long (0 = wait forever)");
  flags.define_i64("idle-timeout-ms", 0,
                   "serve/proxy: reap client connections idle this long "
                   "(0 = never)");
  flags.define_i64("frame-deadline-ms", 0,
                   "serve/proxy: total read deadline per request frame; "
                   "defeats byte-trickle senders (0 = unbounded)");
  flags.define_i64("max-request-frame-mb", 0,
                   "serve/proxy: hard cap on a request frame "
                   "(0 = protocol max, 64 MiB)");
  flags.define_string("host", "",
                      "request: TCP host to dial (numeric IPv4; "
                      "default loopback)");
  flags.define_string("target", "",
                      "netem: forward target (unix socket path, port, or "
                      "host:port)");
  flags.define_string("schedule", "",
                      "netem: fault schedule, e.g. "
                      "'delay-ms:50,drop:5,partition:2000:2000' "
                      "(empty = transparent relay)");
  flags.define_i64("seed", 1, "netem: schedule PRNG seed");

  try {
    flags.parse(argc, argv);
    if (flags.positional().empty()) return usage();

    if (!flags.str("log-level").empty()) {
      obs::LogLevel level;
      if (!obs::parse_log_level(flags.str("log-level"), &level))
        throw vppb::Error("bad --log-level '" + flags.str("log-level") +
                          "' (trace debug info warn error off)");
      obs::Logger::global().set_level(level);
    }
    if (flags.boolean("log-json")) obs::Logger::global().set_json(true);

    // Self-profiling: --profile (or $VPPB_PROFILE) arms the tracer for
    // the whole command and writes the Chrome trace on the way out —
    // including the error paths, so a slow-then-failing run still
    // yields its timeline.
    const std::string profile = !flags.str("profile").empty()
                                    ? flags.str("profile")
                                    : vppb::util::env_or("VPPB_PROFILE", "");
    if (!profile.empty()) obs::Tracer::global().enable();
    const auto write_profile = [&profile]() {
      if (profile.empty()) return;
      obs::Tracer::global().write_chrome_json(profile);
      std::fprintf(stderr, "vppb: wrote %zu trace events to %s\n",
                   obs::Tracer::global().event_count(), profile.c_str());
    };

    int rc = 2;
    try {
      const std::string& cmd = flags.positional()[0];
      if (cmd == "gen") rc = cmd_gen(flags);
      else if (cmd == "info") rc = cmd_info(flags);
      else if (cmd == "check") rc = cmd_check(flags);
      else if (cmd == "predict") rc = cmd_predict(flags);
      else if (cmd == "simulate") rc = cmd_simulate(flags);
      else if (cmd == "analyze") rc = cmd_analyze(flags);
      else if (cmd == "validate") rc = cmd_validate(flags);
      else if (cmd == "convert") rc = cmd_convert(flags);
      else if (cmd == "serve") rc = cmd_serve(flags);
      else if (cmd == "proxy") rc = cmd_proxy(flags);
      else if (cmd == "cluster") rc = cmd_cluster(flags);
      else if (cmd == "request") rc = cmd_request(flags);
      else if (cmd == "netem") rc = cmd_netem(flags);
      else if (cmd == "stats") rc = cmd_stats(flags);
      else if (cmd == "top") rc = cmd_top(flags);
      else if (cmd == "trace-collect") rc = cmd_trace_collect(flags);
      else rc = usage();
    } catch (...) {
      write_profile();
      throw;
    }
    write_profile();
    return rc;
  } catch (const core::BudgetExceeded& e) {
    // Same meaning as a daemon kBudgetExceeded response, same exit code.
    std::fprintf(stderr, "vppb: %s\n", e.what());
    return 5;
  } catch (const server::AuthError& e) {
    // A definitive key rejection, distinct from transport failure (1):
    // retrying cannot help, rotating the key can.
    std::fprintf(stderr, "vppb: %s\n", e.what());
    return 9;
  } catch (const vppb::Error& e) {
    std::fprintf(stderr, "vppb: %s\n", e.what());
    return 1;
  }
}
